"""Bring your own application: the approach is database-independent.

Section 6.5 of the paper argues that the template-based method transfers
to any domain equipped with a data dictionary — no training, no
fine-tuning, no per-application LLM work beyond the once-for-all template
enhancement.  This example builds a *supply-chain risk* application from
scratch: rules, glossary, data, reasoning, explanations.

Run with::

    python examples/custom_application.py
"""

from repro import DomainGlossary, Explainer, SimulatedLLM, fact, parse_program, reason
from repro.core import StructuralAnalysis


RULES = """
delta1: Supplies(x, y, q), q > 10 -> DependsOn(y, x).
delta2: DependsOn(y, x), Outage(x) -> AtRisk(y).
delta3: AtRisk(y), Supplies(y, z, q), q > 10 -> AtRisk(z).
delta4: AtRisk(y), Inventory(y, d), BacklogDays(y, b), t = sum(b), t > d
        -> Disrupted(y).
"""


def build_glossary() -> DomainGlossary:
    glossary = DomainGlossary()
    glossary.define(
        "Supplies", ["x", "y", "q"],
        "<x> supplies <q> critical units per week to <y>",
    )
    glossary.define("DependsOn", ["y", "x"], "<y> depends on supplier <x>")
    glossary.define("Outage", ["x"], "<x> suffers a production outage")
    glossary.define("AtRisk", ["y"], "<y> is at operational risk")
    glossary.define(
        "Inventory", ["y", "d"], "<y> holds <d> days of safety stock"
    )
    glossary.define(
        "BacklogDays", ["y", "b"], "<y> accumulates <b> days of backlog"
    )
    glossary.define("Disrupted", ["y"], "<y> halts production")
    return glossary


def main() -> None:
    program = parse_program(RULES, name="supply_chain", goal="Disrupted")
    glossary = build_glossary()

    # The database-independent step: reasoning paths from the rules alone.
    analysis = StructuralAnalysis(program)
    print(analysis.describe())
    print()

    result = reason(program, [
        fact("Supplies", "Mine", "Smelter", 40),
        fact("Supplies", "Smelter", "Factory", 25),
        fact("Outage", "Mine"),
        fact("Inventory", "Factory", 5),
        fact("BacklogDays", "Factory", 4),
        fact("BacklogDays", "Factory", 3),
    ])
    print("Derived:", ", ".join(str(f) for f in result.derived()))
    print()

    explainer = Explainer(
        result, glossary, llm=SimulatedLLM(seed=2, faithful=True)
    )
    query = fact("Disrupted", "Factory")
    explanation = explainer.explain(query)
    print(f"Q_e = {{{query}}}  (paths: {', '.join(explanation.paths_used())})")
    print(explanation.text)


if __name__ == "__main__":
    main()
