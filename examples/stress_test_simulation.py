"""Stress-test simulation: shock propagation over two debt channels.

Reproduces the analyst workflow of the paper's Section 5: simulate an
exogenous shock on one institution, derive the cascade of defaults over
the long-term and short-term exposure channels, and generate a business
report for each default — including the Figures 12/13 representative
scenario with its narrated explanation of Default(F).

Run with::

    python examples/stress_test_simulation.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import figures, generators, stress_test
from repro.apps.stress_test import default


def representative_scenario() -> None:
    scenario = figures.figure12_stress_instance()
    result = scenario.run()
    print(f"Scenario: {scenario.description}")
    print("Cascade of defaults:", ", ".join(str(f) for f in result.answers()))
    print()

    explainer = Explainer(
        result, scenario.application.glossary,
        llm=SimulatedLLM(seed=1, faithful=True),
    )
    for fact in result.answers():
        explanation = explainer.explain(fact)
        print(f"Q_e = {{{fact}}}  (paths: {', '.join(explanation.paths_used())})")
        print(f"  {explanation.text}")
        print()


def channel_analysis() -> None:
    """Which channel carries the contagion?  Compare a long-term-only
    exposure against a split two-channel exposure of the same total."""
    application = stress_test.build()
    base = [
        stress_test.shock("Bank0", 12),
        stress_test.has_capital("Bank0", 5),
        stress_test.has_capital("Lender", 9),
    ]
    single = application.reason(
        base + [stress_test.long_term_debt("Bank0", "Lender", 8)]
    )
    split = application.reason(base + [
        stress_test.long_term_debt("Bank0", "Lender", 6),
        stress_test.short_term_debt("Bank0", "Lender", 4),
    ])
    print("Channel analysis:")
    print(
        "  one 8M long-term exposure:      Lender defaults ->",
        default("Lender") in single.answers(),
    )
    print(
        "  6M long + 4M short (10M total): Lender defaults ->",
        default("Lender") in split.answers(),
    )
    explainer = Explainer(split, application.glossary)
    print()
    print("Why the split exposure sinks the lender:")
    print(" ", explainer.explain(default("Lender"), prefer_enhanced=False).text)
    print()


def large_cascade() -> None:
    """A longer synthetic cascade from the workload generator."""
    scenario = generators.stress_with_steps(13, seed=42)
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary)
    explanation = explainer.explain(scenario.target, prefer_enhanced=False)
    print(f"Generated cascade ({scenario.description}):")
    print(f"  proof length: {result.proof_size(scenario.target)} chase steps")
    print(f"  paths: {', '.join(explanation.paths_used())}")
    print(f"  report: {explanation.text[:400]}...")


def main() -> None:
    representative_scenario()
    channel_analysis()
    large_cascade()


if __name__ == "__main__":
    main()
