"""Golden-powers screening: negation, constraints and business reports.

The synthesized golden-powers application (see
:mod:`repro.apps.golden_powers`) screens foreign takeovers of strategic
assets.  This example shows the two Vadalog extensions the paper's
printed applications do not exercise — negation ("no exemption on file")
and a negative constraint (a vetoed acquirer reaching control is a
compliance violation) — and assembles everything into a single business
report.

Run with::

    python examples/golden_powers_screening.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import golden_powers as gp
from repro.core import ReportBuilder


def main() -> None:
    application = gp.build()
    print(application.program.describe())
    print()

    result = application.reason([
        # EagleFund builds a joint position in the strategic grid operator:
        # 40% directly plus 20% through a fully-owned pipeline company.
        gp.company("EagleFund"),
        gp.own("EagleFund", "GridCo", 0.40),
        gp.own("EagleFund", "PipeCo", 0.60),
        gp.own("PipeCo", "GridCo", 0.20),
        gp.foreign("EagleFund"),
        gp.strategic("GridCo"),
        gp.vetoed("EagleFund"),          # ...despite an existing veto.
        # AllyFund holds an exemption: control, but no alert.
        gp.own("AllyFund", "PortCo", 0.80),
        gp.foreign("AllyFund"),
        gp.strategic("PortCo"),
        gp.exempt("AllyFund"),
    ])

    print("Alerts raised:", ", ".join(str(f) for f in result.answers()) or "none")
    print("Violations:", len(result.violations))
    print()

    explainer = Explainer(
        result, application.glossary, llm=SimulatedLLM(seed=6, faithful=True)
    )
    report = ReportBuilder(explainer).build(
        title="Golden-power screening report"
    )
    print(report.to_markdown())


if __name__ == "__main__":
    main()
