"""Company-control investigation: who really controls whom?

The workload the paper's Section 5 motivates: an analyst faces a cluster
of companies with layered shareholdings and must discover — and *explain*
— the chains of control, including joint control exercised through
several subsidiaries (the Figure 15 Irish Bank case).

Run with::

    python examples/company_control_investigation.py
"""

from repro import Explainer, SimulatedLLM
from repro.apps import company_control, figures
from repro.apps.company_control import company, control, own
from repro.engine import Database
from repro.render import financial_network_dot


def investigate_portfolio() -> None:
    """A synthetic multi-layer ownership structure."""
    application = company_control.build()
    database = Database([
        # A holding with full control of two vehicles...
        own("AlphaHolding", "VehicleOne", 0.70),
        own("AlphaHolding", "VehicleTwo", 0.65),
        # ...which jointly (but not individually) control the target...
        own("VehicleOne", "TargetCorp", 0.30),
        own("VehicleTwo", "TargetCorp", 0.28),
        # ...which in turn has a majority stake downstream.
        own("TargetCorp", "Subsidiary", 0.80),
        # Noise: minority stakes that must not yield control edges.
        own("Outsider", "TargetCorp", 0.15),
        own("Outsider", "VehicleOne", 0.10),
        company("AlphaHolding"),
    ])

    result = application.reason(database)
    print("Control edges discovered (auto-controls omitted):")
    for fact in result.answers():
        if fact.terms[0] != fact.terms[1]:
            print(f"  {fact}")
    print()

    explainer = Explainer(
        result, application.glossary, llm=SimulatedLLM(seed=4, faithful=True)
    )
    for target in ("TargetCorp", "Subsidiary"):
        query = control("AlphaHolding", target)
        explanation = explainer.explain(query)
        print(f"Q_e = {{{query}}}  (paths: {', '.join(explanation.paths_used())})")
        print(f"  {explanation.text}")
        print()


def replay_figure15() -> None:
    """The paper's own worked case, with the four output styles."""
    scenario = figures.figure15_instance()
    result = scenario.run()
    explainer = Explainer(
        result, scenario.application.glossary,
        llm=SimulatedLLM(seed=3, faithful=True),
    )
    print("— Deterministic explanation (verbose, complete):")
    print(" ", explainer.deterministic_explanation(scenario.target))
    print()
    print("— Template-based explanation (fluent, complete, no data shared):")
    print(" ", explainer.explain(scenario.target).text)
    print()
    print("— The network, as DOT (render with Graphviz):")
    print(financial_network_dot(scenario.database, name="irish_bank"))


def main() -> None:
    investigate_portfolio()
    replay_figure15()


if __name__ == "__main__":
    main()
