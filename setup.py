"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the setuptools legacy editable install).
"""

from setuptools import setup

setup()
