"""Unit tests for ReasoningPath value objects."""

import pytest

from repro.core.paths import ReasoningPath
from repro.datalog.parser import parse_rule


@pytest.fixture()
def rules():
    return (
        parse_rule("Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f)", "alpha"),
        parse_rule("Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e)", "beta"),
        parse_rule("HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c)", "gamma"),
    )


def make_path(rules, **overrides):
    defaults = dict(kind="simple", rules=rules, name="Pi1", target="Default")
    defaults.update(overrides)
    return ReasoningPath(**defaults)


class TestBasics:
    def test_labels_in_order(self, rules):
        assert make_path(rules).labels == ("alpha", "beta", "gamma")

    def test_label_set(self, rules):
        assert make_path(rules).label_set == frozenset({"alpha", "beta", "gamma"})

    def test_kind_validation(self, rules):
        with pytest.raises(ValueError):
            make_path(rules, kind="loop")

    def test_empty_rules_rejected(self, rules):
        with pytest.raises(ValueError):
            make_path(())

    def test_rule_lookup(self, rules):
        path = make_path(rules)
        assert path.rule("beta").label == "beta"
        with pytest.raises(KeyError):
            path.rule("delta")

    def test_is_cycle(self, rules):
        assert not make_path(rules).is_cycle
        assert make_path(rules, kind="cycle", anchor="Default").is_cycle


class TestAggregationVariants:
    def test_aggregate_labels(self, rules):
        assert make_path(rules).aggregate_labels() == ("beta",)

    def test_variant_enumeration(self, rules):
        variants = list(make_path(rules).variants())
        assert [v.multi_rules for v in variants] == [
            frozenset(), frozenset({"beta"}),
        ]

    def test_base_variant_first(self, rules):
        assert make_path(rules).base_variant().multi_rules == frozenset()

    def test_forced_multi_always_flagged(self, rules):
        path = make_path(rules, forced_multi=frozenset({"beta"}),
                         multi_rules=frozenset({"beta"}))
        variants = list(path.variants())
        assert len(variants) == 1
        assert variants[0].multi_rules == frozenset({"beta"})

    def test_has_aggregation_variants(self, rules):
        assert make_path(rules).has_aggregation_variants
        forced = make_path(
            rules, forced_multi=frozenset({"beta"}), multi_rules=frozenset({"beta"})
        )
        assert not forced.has_aggregation_variants

    def test_is_multi(self, rules):
        variant = make_path(rules, multi_rules=frozenset({"beta"}))
        assert variant.is_multi("beta")
        assert not variant.is_multi("alpha")


class TestNotation:
    def test_greek_notation(self, rules):
        assert make_path(rules).notation() == "Pi1 = {α, β, γ}"

    def test_star_for_multi_variant(self, rules):
        variant = make_path(rules, multi_rules=frozenset({"beta"}))
        assert "*" in variant.notation()

    def test_signature_ignores_name(self, rules):
        first = make_path(rules, name="Pi1")
        second = make_path(rules, name="Pi9")
        assert first.signature() == second.signature()
