"""Tests for computed body assignments (Vadalog body expressions)."""

import pytest

from repro.core import DomainGlossary, Explainer, completeness_ratio
from repro.datalog import SafetyError, fact, parse_program, parse_rule
from repro.engine import reason


class TestParsing:
    def test_fresh_variable_becomes_assignment(self):
        rule = parse_rule("P(x, a, b), r = a + b -> Q(x, r)")
        assert len(rule.assignments) == 1
        assert rule.conditions == ()

    def test_bound_variable_becomes_equality_condition(self):
        rule = parse_rule('Risk(c, e, t), t = "long" -> L(c)')
        assert rule.assignments == ()
        assert len(rule.conditions) == 1
        assert rule.conditions[0].op == "=="

    def test_chained_assignments(self):
        rule = parse_rule("P(x, a), r = a * 2, s = r + 1 -> Q(x, s)")
        assert len(rule.assignments) == 2

    def test_aggregate_still_wins_over_assignment(self):
        rule = parse_rule("P(x, v), t = sum(v) -> Q(x, t)")
        assert rule.has_aggregate
        assert rule.assignments == ()

    def test_assignment_target_in_head_is_bound(self):
        rule = parse_rule("P(x, a), r = a + 1 -> Q(x, r)")
        assert rule.existentials == frozenset()

    def test_str_roundtrip(self):
        rule = parse_rule("P(x, a), r = a + 1 -> Q(x, r)")
        assert str(parse_rule(str(rule))) == str(rule)


class TestSafety:
    def test_unbound_expression_variable_rejected(self):
        with pytest.raises(SafetyError):
            parse_rule("P(x), r = zz + 1 -> Q(x, r)")

    def test_reassignment_becomes_equality(self):
        """The parser resolves a second `r = ...` over an assigned variable
        into an equality condition (both expressions must agree)."""
        rule = parse_rule("P(x, a), r = a + 1, r = a + 2 -> Q(x, r)")
        assert len(rule.assignments) == 1
        assert len(rule.conditions) == 1

    def test_direct_reassignment_rejected(self):
        from repro.datalog import Atom, Rule, Variable
        from repro.datalog.conditions import BinaryOp

        x, a, r = Variable("x"), Variable("a"), Variable("r")
        with pytest.raises(SafetyError):
            Rule(
                label="bad",
                body=(Atom("P", (x, a)),),
                head=Atom("Q", (x, r)),
                assignments=(
                    (r, BinaryOp("+", a, a)),
                    (r, BinaryOp("*", a, a)),
                ),
            )

    def test_condition_may_use_assigned_variable(self):
        rule = parse_rule("P(x, a), r = a * 2, r > 10 -> Q(x, r)")
        assert len(rule.conditions) == 1


class TestEvaluation:
    def test_arithmetic_assignment(self):
        program = parse_program(
            "r1: Loan(x, p, rate), i = p * rate -> Interest(x, i).",
            name="loans", goal="Interest",
        )
        result = reason(program, [fact("Loan", "L1", 200, 0.05)])
        assert result.answers() == (fact("Interest", "L1", 10),)

    def test_assignment_feeds_condition(self):
        program = parse_program(
            "r1: Loan(x, p, rate), i = p * rate, i > 5 -> Costly(x).",
            name="loans", goal="Costly",
        )
        result = reason(program, [
            fact("Loan", "Big", 200, 0.05), fact("Loan", "Small", 40, 0.05),
        ])
        assert result.answers() == (fact("Costly", "Big"),)

    def test_chained_evaluation(self):
        program = parse_program(
            "r1: P(x, a), r = a * 2, s = r + 1 -> Q(x, s).",
            name="chain", goal="Q",
        )
        result = reason(program, [fact("P", "X", 5)])
        assert result.answers() == (fact("Q", "X", 11),)

    def test_float_noise_rounded(self):
        program = parse_program(
            "r1: P(x, a, b), s = a + b -> Q(x, s).", name="fp", goal="Q"
        )
        result = reason(program, [fact("P", "X", 0.275, 0.295)])
        assert str(result.answers()[0].terms[1]) == "0.57"

    def test_assignment_with_aggregate(self):
        """Assignment computed per contributor, aggregate over results."""
        program = parse_program(
            "r1: Exposure(c, v, w), x = v * w, t = sum(x) -> Weighted(c, t).",
            name="weights", goal="Weighted",
        )
        result = reason(program, [
            fact("Exposure", "C", 10, 2), fact("Exposure", "C", 5, 4),
        ])
        assert result.answers() == (fact("Weighted", "C", 40),)

    def test_semi_naive_agrees(self):
        program = parse_program(
            "r1: Loan(x, p, rate), i = p * rate -> Interest(x, i).",
            name="loans", goal="Interest",
        )
        data = [fact("Loan", "L1", 200, 0.05), fact("Loan", "L2", 100, 0.1)]
        naive = reason(program, data)
        semi = reason(program, data, strategy="semi-naive")
        assert set(naive.answers()) == set(semi.answers())


class TestExplanation:
    def test_assignment_verbalized_and_complete(self):
        program = parse_program(
            "r1: Loan(x, p, rate), i = p * rate, i > 5 -> Costly(x, i).",
            name="loans", goal="Costly",
        )
        result = reason(program, [fact("Loan", "L1", 100, 0.08)])
        glossary = DomainGlossary()
        glossary.define("Loan", ["x", "p", "r"],
                        "loan <x> has principal <p> at rate <r>")
        glossary.define("Costly", ["x", "i"],
                        "loan <x> is costly with interest <i>")
        explainer = Explainer(result, glossary)
        explanation = explainer.explain(
            fact("Costly", "L1", 8), prefer_enhanced=False
        )
        assert "8 being 100 times 0.08" in explanation.text
        constants = explainer.proof_constants(fact("Costly", "L1", 8))
        assert completeness_ratio(explanation.text, constants) == 1.0
