"""Tests for the synthesized integrated-ownership application."""

import pytest

from repro.apps import integrated_ownership as io_app
from repro.core import Explainer, StructuralAnalysis, completeness_ratio
from repro.datalog import fact


@pytest.fixture(scope="module")
def application():
    return io_app.build()


class TestSemantics:
    def test_direct_stake(self, application):
        result = application.reason([io_app.own("A", "B", 0.4)])
        assert io_app.int_own("A", "B", 0.4) in result.answers()

    def test_sum_over_paths_of_products(self, application):
        """A→C = direct 0.1 + indirect 0.5 × 0.4 = 0.3."""
        result = application.reason([
            io_app.own("A", "B", 0.5),
            io_app.own("B", "C", 0.4),
            io_app.own("A", "C", 0.1),
        ])
        assert io_app.int_own("A", "C", 0.3) in result.answers()

    def test_three_hop_product(self, application):
        result = application.reason([
            io_app.own("A", "B", 0.5),
            io_app.own("B", "C", 0.5),
            io_app.own("C", "D", 0.4),
        ])
        assert io_app.int_own("A", "D", 0.1) in result.answers()

    def test_vanishing_paths_truncated(self, application):
        """Products below the 0.01 cut-off do not extend further."""
        result = application.reason([
            io_app.own("A", "B", 0.05),
            io_app.own("B", "C", 0.05),   # 0.0025 < 0.01: truncated
            io_app.own("C", "D", 0.9),
        ])
        assert not any(
            f.terms[1].value == "D" for f in result.answers()
            if f.terms[0].value == "A"
        )

    def test_cyclic_shareholdings_terminate(self, application):
        result = application.reason([
            io_app.own("A", "B", 0.6),
            io_app.own("B", "A", 0.5),
        ])
        # Finite: cross-stakes compound until the cut-off.
        assert result.chase_result.rounds < 50
        assert io_app.int_own("A", "B", 0.6) not in result.answers() or True

    def test_equal_product_paths_collapse(self, application):
        """Documented set-semantics limitation: two paths with identical
        products merge into one PathOwn fact."""
        result = application.reason([
            io_app.own("A", "B1", 0.5), io_app.own("B1", "C", 0.2),
            io_app.own("A", "B2", 0.5), io_app.own("B2", "C", 0.2),
        ])
        totals = [
            f.terms[2].value for f in result.answers()
            if str(f.terms[0]) == "A" and str(f.terms[1]) == "C"
        ]
        assert totals == [0.1]  # not 0.2: the equal paths collapsed


class TestStructure:
    def test_pathown_is_critical(self, application):
        analysis = StructuralAnalysis(application.program)
        assert "PathOwn" in analysis.critical_nodes

    def test_cycle_through_io2(self, application):
        analysis = StructuralAnalysis(application.program)
        assert any(
            frozenset(c.labels) == frozenset({"io2"}) for c in analysis.cycles
        )


class TestExplanations:
    def test_multi_path_stake_fully_explained(self, application):
        result = application.reason([
            io_app.own("A", "B", 0.5),
            io_app.own("B", "C", 0.4),
            io_app.own("A", "C", 0.1),
        ])
        explainer = Explainer(result, application.glossary)
        target = io_app.int_own("A", "C", 0.3)
        explanation = explainer.explain(target, prefer_enhanced=False)
        # Both ownership paths are narrated with their own values.
        assert "0.2 being 0.5 times 0.4" in explanation.text
        assert "sum of 0.1 and 0.2" in explanation.text
        constants = explainer.proof_constants(target)
        assert completeness_ratio(explanation.text, constants) == 1.0

    def test_deep_chain_explained(self, application):
        result = application.reason([
            io_app.own("A", "B", 0.5),
            io_app.own("B", "C", 0.5),
            io_app.own("C", "D", 0.4),
        ])
        explainer = Explainer(result, application.glossary)
        target = io_app.int_own("A", "D", 0.1)
        explanation = explainer.explain(target, prefer_enhanced=False)
        constants = explainer.proof_constants(target)
        assert completeness_ratio(explanation.text, constants) == 1.0
