"""Semi-naive evaluation: equivalence with naive on every workload."""

import pytest

from repro.apps import figures, generators
from repro.core import Explainer
from repro.datalog import fact, parse_program
from repro.engine import ChaseEngine, Database, chase, reason


class TestStrategySelection:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ChaseEngine(strategy="magic")

    def test_default_is_naive(self):
        assert ChaseEngine().strategy == "naive"


def _facts_by_predicate(result):
    grouped = {}
    for current in result.database.facts():
        grouped.setdefault(current.predicate, set()).add(current)
    return grouped


class TestEquivalence:
    TRANSITIVE = parse_program(
        "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
        name="tc", goal="T",
    )

    def test_transitive_closure_equal(self):
        database = Database([
            fact("E", "A", "B"), fact("E", "B", "C"),
            fact("E", "C", "D"), fact("E", "D", "B"),
        ])
        naive = chase(self.TRANSITIVE, database)
        semi = chase(self.TRANSITIVE, database, strategy="semi-naive")
        assert _facts_by_predicate(naive) == _facts_by_predicate(semi)
        assert len(naive.records) == len(semi.records)

    def test_record_facts_identical(self):
        database = Database([fact("E", "A", "B"), fact("E", "B", "C")])
        naive = chase(self.TRANSITIVE, database)
        semi = chase(self.TRANSITIVE, database, strategy="semi-naive")
        assert {r.fact for r in naive.records} == {r.fact for r in semi.records}

    @pytest.mark.parametrize("scenario_builder", [
        lambda: figures.figure8_instance(),
        lambda: figures.figure12_stress_instance(),
        lambda: figures.figure15_instance(),
        lambda: generators.control_chain(8, seed=3),
        lambda: generators.stress_cascade(4, seed=3, dual_final=True),
        lambda: generators.close_links_common_control(seed=3),
    ])
    def test_application_workloads_equal(self, scenario_builder):
        scenario = scenario_builder()
        program = scenario.application.program
        naive = chase(program, scenario.database)
        semi = chase(program, scenario.database, strategy="semi-naive")
        assert _facts_by_predicate(naive) == _facts_by_predicate(semi)
        assert naive.superseded == semi.superseded

    def test_negation_program_equal(self):
        program = parse_program(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            sep:  Node(x), Node(y), x != y, not T(x, y) -> Unreachable(x, y).
            """,
            name="p", goal="Unreachable",
        )
        database = Database([
            fact("Node", "A"), fact("Node", "B"), fact("Node", "C"),
            fact("E", "A", "B"),
        ])
        naive = chase(program, database)
        semi = chase(program, database, strategy="semi-naive")
        assert _facts_by_predicate(naive) == _facts_by_predicate(semi)

    def test_constraints_checked_identically(self):
        program = parse_program(
            """
            r1: Own(x, y, s), s > 0.5 -> Control(x, y).
            c1: Control(x, y), Control(y, x), x != y -> false.
            """,
            name="mutual", goal="Control",
        )
        database = Database([
            fact("Own", "A", "B", 0.7), fact("Own", "B", "A", 0.6),
        ])
        naive = chase(program, database)
        semi = chase(program, database, strategy="semi-naive")
        assert len(naive.violations) == len(semi.violations)


class TestExplanationsUnderSemiNaive:
    def test_figure8_explanation_identical(self):
        scenario = figures.figure8_instance()
        texts = []
        for strategy in ("naive", "semi-naive"):
            result = reason(
                scenario.application.program, scenario.database,
                strategy=strategy,
            )
            explainer = Explainer(result, scenario.application.glossary)
            texts.append(
                explainer.explain(scenario.target, prefer_enhanced=False).text
            )
        assert texts[0] == texts[1]

    def test_proof_sizes_identical(self):
        scenario = generators.control_with_steps(9, seed=5)
        naive = reason(scenario.application.program, scenario.database)
        semi = reason(
            scenario.application.program, scenario.database,
            strategy="semi-naive",
        )
        assert naive.proof_size(scenario.target) == semi.proof_size(
            scenario.target
        )


class TestDeltaCorrectness:
    def test_multi_delta_join_found_once(self):
        """A rule joining two delta facts must fire exactly once."""
        program = parse_program(
            """
            mk: Seed(x, y) -> P(x, y).
            join: P(x, y), P(y, z) -> Q(x, z).
            """,
            name="j", goal="Q",
        )
        database = Database([fact("Seed", "A", "B"), fact("Seed", "B", "C")])
        semi = chase(program, database, strategy="semi-naive")
        q_records = [r for r in semi.records if r.fact.predicate == "Q"]
        assert len(q_records) == 1

    def test_late_edb_predicate_join(self):
        """Plain rules must still see non-delta facts on the other side."""
        program = parse_program(
            """
            step1: A(x) -> B(x).
            step2: B(x), Static(x) -> C(x).
            """,
            name="late", goal="C",
        )
        database = Database([fact("A", "X"), fact("Static", "X")])
        semi = chase(program, database, strategy="semi-naive")
        assert fact("C", "X") in semi.database
