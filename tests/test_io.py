"""Tests for the file formats (programs, facts, glossaries) and the
file-driven CLI."""

import json

import pytest

from repro.cli import main
from repro.datalog import ParseError, fact
from repro.engine import Database
from repro.io import (
    dump_glossary,
    dumps_database,
    load_database,
    load_facts,
    load_glossary,
    load_program,
    loads_database,
    loads_facts,
    loads_glossary,
    loads_program,
    parse_fact,
    save_database,
    save_facts,
)

PROGRAM_TEXT = """
% @name demo
% @goal Control
sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
"""

GLOSSARY_JSON = json.dumps({
    "Own": {"params": ["x", "y", "s"], "text": "<x> owns <s> of <y>"},
    "Control": {"params": ["x", "y"], "text": "<x> controls <y>"},
})


class TestProgramFiles:
    def test_pragmas_honoured(self):
        program = loads_program(PROGRAM_TEXT)
        assert program.name == "demo"
        assert program.goal == "Control"

    def test_arguments_override_pragmas(self):
        program = loads_program(PROGRAM_TEXT, name="other", goal="Own")
        assert program.name == "other"
        assert program.goal == "Own"

    def test_hash_pragma_supported(self):
        program = loads_program("# @goal Q\nP(x) -> Q(x).")
        assert program.goal == "Q"

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "rules.vada"
        path.write_text(PROGRAM_TEXT)
        assert load_program(path).goal == "Control"


class TestFactFiles:
    def test_parse_fact(self):
        assert parse_fact("Own(A, B, 0.6).") == fact("Own", "A", "B", 0.6)

    def test_parse_fact_quoted_and_numeric(self):
        parsed = parse_fact('Risk(C, 11, "long")')
        assert parsed == fact("Risk", "C", 11, "long")

    def test_parse_fact_rejects_variables(self):
        with pytest.raises(ParseError):
            parse_fact("Own(x, B, 0.6)")

    def test_parse_fact_rejects_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_fact("Own(A, B, 0.6) extra")

    def test_loads_facts_skips_comments_and_blanks(self):
        database = loads_facts("""
        % comment
        Own(A, B, 0.6).

        # another
        Company(A).
        """)
        assert len(database) == 2

    def test_loads_facts_reports_line_number(self):
        with pytest.raises(ParseError) as info:
            loads_facts("Own(A, B, 0.6).\nbroken line\n")
        assert "line 2" in str(info.value)

    def test_roundtrip_via_disk(self, tmp_path):
        database = Database([fact("Own", "A", "B", 0.6), fact("Company", "A")])
        path = tmp_path / "x.facts"
        save_facts(database, path)
        reloaded = load_facts(path)
        assert set(reloaded.facts()) == set(database.facts())


class TestGlossaryFiles:
    def test_loads_glossary(self):
        glossary = loads_glossary(GLOSSARY_JSON)
        assert "Own" in glossary
        assert glossary.entry("Control").params == ("x", "y")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ParseError):
            loads_glossary('["not", "an", "object"]')
        with pytest.raises(ParseError):
            loads_glossary('{"Own": {"params": ["x"]}}')

    def test_roundtrip_via_disk(self, tmp_path):
        glossary = loads_glossary(GLOSSARY_JSON)
        path = tmp_path / "g.json"
        dump_glossary(glossary, path)
        reloaded = load_glossary(path)
        assert reloaded.predicates() == glossary.predicates()
        assert reloaded.entry("Own").text == glossary.entry("Own").text


class TestDatabaseSnapshots:
    """``repro-db/1`` snapshots: symbol table + interned facts, so a warm
    start rebuilds the identical columnar encoding."""

    def test_roundtrip_preserves_encoding(self):
        database = Database([
            fact("Own", "A", "B", 0.6),
            fact("Company", "A"),
            fact("Own", "B", "C", 0.7),
        ])
        restored = loads_database(dumps_database(database))
        assert restored.facts() == database.facts()
        for current in database.facts():
            assert restored.sequence(current) == database.sequence(current)
        for term in database.symbols:
            assert restored.symbols.lookup(term) == database.symbols.lookup(term)

    def test_roundtrip_preserves_nulls_from_chase(self):
        from repro.datalog import parse_program
        from repro.engine import chase

        program = parse_program(
            "r: Person(x) -> HasParent(x, z).", name="nulls", goal="HasParent"
        )
        chased = chase(
            program, Database([fact("Person", "A"), fact("Person", "B")]),
            strategy="planned",
        ).database
        restored = loads_database(dumps_database(chased))
        assert restored.facts() == chased.facts()
        assert [str(f) for f in restored.facts("HasParent")] == [
            str(f) for f in chased.facts("HasParent")
        ]

    def test_numeric_types_survive_json(self):
        database = Database([fact("P", 2), fact("Q", 2.5), fact("R", True)])
        restored = loads_database(dumps_database(database))
        assert [repr(f.terms[0]) for f in restored.facts()] == [
            "Constant(2)", "Constant(2.5)", "Constant(True)",
        ]

    def test_value_equal_terms_restore_to_canonical_spelling(self):
        """The documented normalization caveat: 1.0 shares 1's id, so a
        round-trip re-spells it canonically — str() output unchanged."""
        database = Database([fact("P", 1), fact("Q", 1.0)])
        restored = loads_database(dumps_database(database))
        assert repr(restored.facts("Q")[0].terms[0]) == "Constant(1)"
        assert str(restored.facts("Q")[0]) == str(database.facts("Q")[0])

    def test_wrong_format_rejected(self):
        with pytest.raises(ParseError):
            loads_database(json.dumps({"format": "repro-db/0", "facts": []}))

    def test_roundtrip_via_disk(self, tmp_path):
        database = Database([fact("Own", "A", "B", 0.6)])
        path = tmp_path / "db.json"
        save_database(database, path)
        assert load_database(path).facts() == database.facts()


@pytest.fixture()
def application_files(tmp_path):
    program = tmp_path / "rules.vada"
    program.write_text(
        "% @goal Control\n"
        "sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).\n"
        "sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 "
        "-> Control(x, y).\n"
    )
    data = tmp_path / "data.facts"
    data.write_text("Own(A, B, 0.7).\nOwn(B, C, 0.6).\n")
    glossary = tmp_path / "glossary.json"
    glossary.write_text(GLOSSARY_JSON)
    return program, data, glossary


class TestFileDrivenCli:
    def test_listing_without_query(self, application_files, capsys):
        program, data, glossary = application_files
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Control(A, C)" in output

    def test_single_query(self, application_files, capsys):
        program, data, glossary = application_files
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary), "--query", "Control(A, C)",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Q_e = {Control(A, C)}" in output
        assert "0.6" in output

    def test_query_all(self, application_files, capsys):
        program, data, glossary = application_files
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary), "--query-all", "--deterministic",
        ])
        assert code == 0
        assert capsys.readouterr().out.count("Q_e =") == 3

    def test_dot_mode(self, application_files, capsys):
        program, data, glossary = application_files
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary), "--dot",
        ])
        assert code == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_missing_companions_rejected(self, application_files, capsys):
        program, __, __ = application_files
        assert main(["--program", str(program)]) == 2

    def test_violations_printed(self, tmp_path, capsys):
        program = tmp_path / "rules.vada"
        program.write_text(
            "% @goal Q\n"
            "r1: P(x) -> Q(x).\n"
            "c1: Q(x), Banned(x) -> false.\n"
        )
        data = tmp_path / "data.facts"
        data.write_text("P(A).\nBanned(A).\n")
        glossary = tmp_path / "g.json"
        glossary.write_text(json.dumps({
            "P": {"params": ["x"], "text": "<x> is a p"},
            "Q": {"params": ["x"], "text": "<x> is a q"},
            "Banned": {"params": ["x"], "text": "<x> is banned"},
        }))
        main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary),
        ])
        assert "constraint c1 violated" in capsys.readouterr().out

    def test_shipped_example_files_work(self, capsys):
        code = main([
            "--program", "examples/data/company_control.vada",
            "--data", "examples/data/portfolio.facts",
            "--glossary", "examples/data/company_control_glossary.json",
            "--query", "Control(AlphaHolding, TargetCorp)",
            "--deterministic",
        ])
        assert code == 0
        assert "TargetCorp" in capsys.readouterr().out


class TestWhyNotCli:
    def test_why_not_flag(self, application_files, capsys):
        from repro.cli import main

        program, data, glossary = application_files
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary), "--why-not", "Control(B, A)",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "does not hold" in output


class TestSyntaxQuoting:
    def test_channel_labels_roundtrip_through_fact_files(self, tmp_path):
        """Lowercase string constants ("long") must be quoted on save so
        they reload as constants, not variables."""
        database = Database([fact("Risk", "C", 11, "long")])
        path = tmp_path / "risks.facts"
        save_facts(database, path)
        assert '"long"' in path.read_text()
        reloaded = load_facts(path)
        assert fact("Risk", "C", 11, "long") in reloaded
