"""Tests for the second obs layer: the query flight recorder, the kernel
profiler, SLO evaluation, and their propagation through the service."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import obs
from repro.apps import company_control
from repro.core import ExplanationService, LRUCache
from repro.datalog import fact, parse_program
from repro.engine import Database, chase
from repro.resilience.breaker import CircuitBreaker


class TestFlightRecord:
    def test_record_lifecycle_and_document(self):
        recorder = obs.FlightRecorder()
        with recorder.record("explain", query="Control(a,b)") as record:
            record.set(fingerprint="abc123")
            with record.phase("chase"):
                pass
            record.count("cache.explain.hit")
            record.count("kernel_execs", 3)
            record.event("fallback", reason="timeout")
        assert len(recorder) == 1
        data = recorder.records()[0].to_dict()
        assert data["kind"] == "explain"
        assert data["fingerprint"] == "abc123"
        assert data["status"] == "ok"
        assert data["counts"]["kernel_execs"] == 3
        assert "chase" in data["phases"]
        assert data["events"][0]["kind"] == "fallback"
        document = recorder.document(meta={"run": "test"})
        assert document["format"] == obs.FLIGHT_FORMAT
        assert document["meta"] == {"run": "test"}
        assert len(document["records"]) == 1

    def test_query_ids_are_unique_and_findable(self):
        recorder = obs.FlightRecorder()
        with recorder.record("explain") as first:
            pass
        with recorder.record("explain") as second:
            pass
        assert first.query_id != second.query_id
        assert recorder.find(second.query_id) is second
        assert recorder.find("q-nope") is None

    def test_exception_marks_record_error(self):
        recorder = obs.FlightRecorder()
        with pytest.raises(RuntimeError):
            with recorder.record("explain"):
                raise RuntimeError("boom")
        record = recorder.records()[0]
        assert record.status == "error"
        assert record.attrs["error"] == "RuntimeError"

    def test_ring_buffer_drops_oldest(self):
        recorder = obs.FlightRecorder(capacity=2)
        ids = []
        for _ in range(4):
            with recorder.record("explain") as record:
                ids.append(record.query_id)
        kept = [record.query_id for record in recorder.records()]
        assert kept == ids[-2:]

    def test_event_cap_counts_drops(self):
        recorder = obs.FlightRecorder(max_events=2)
        with recorder.record("explain") as record:
            for n in range(5):
                record.event("tick", n=n)
        assert len(record.events) == 2
        assert record.events_dropped == 3
        assert record.to_dict()["events_dropped"] == 3

    def test_nested_records_parent_on_same_thread(self):
        recorder = obs.FlightRecorder()
        with recorder.record("batch") as outer:
            with recorder.record("task") as inner:
                pass
        assert inner.parent_id == outer.query_id

    def test_disabled_recorder_hands_out_null_record(self):
        recorder = obs.FlightRecorder(enabled=False)
        with recorder.record("explain") as record:
            record.count("x")
            record.event("y")
        assert record is obs.NULL_FLIGHT_RECORD
        assert len(recorder) == 0
        assert recorder.current() is None

    def test_attach_propagates_record_across_threads(self):
        recorder = obs.FlightRecorder()
        seen = {}

        def worker(record):
            with recorder.attach(record):
                current = recorder.current()
                current.count("worker_ticks")
                seen["id"] = current.query_id

        with recorder.record("batch") as batch:
            thread = threading.Thread(target=worker, args=(batch,))
            thread.start()
            thread.join()
        assert seen["id"] == batch.query_id
        assert batch.counts["worker_ticks"] == 1
        # attach() must not close the record: the owner's exit did.
        assert recorder.records()[0] is batch


class TestFlightTaskSafety:
    """The current-record stack is context-local: interleaved asyncio
    tasks on one loop thread must not corrupt each other's stack (the
    race a thread-local stack had under the HTTP server's event loop)."""

    def test_interleaved_tasks_keep_independent_current_records(self):
        recorder = obs.FlightRecorder()
        errors: list[str] = []

        async def flight(name: str, ticks: int):
            with recorder.record("task", query=name) as record:
                for _ in range(ticks):
                    current = recorder.current()
                    if current is not record:
                        errors.append(
                            f"{name} saw "
                            f"{current and current.query}"
                        )
                    # Yield so tasks interleave mid-flight.
                    await asyncio.sleep(0)
                    recorder.current().count("ticks")

        async def main():
            await asyncio.gather(
                *(flight(f"t{n}", ticks=5) for n in range(8))
            )

        asyncio.run(main())
        assert errors == []
        records = recorder.records()
        assert len(records) == 8
        # Every tick landed on its own task's record, and concurrent
        # top-level tasks never parented under one another.
        assert all(record.counts["ticks"] == 5 for record in records)
        assert all(record.parent_id is None for record in records)

    def test_nested_records_parent_within_one_task_only(self):
        recorder = obs.FlightRecorder()

        async def flight(name: str):
            with recorder.record("outer", query=name) as outer:
                await asyncio.sleep(0)
                with recorder.record("inner", query=name) as inner:
                    await asyncio.sleep(0)
                return outer, inner

        async def main():
            return await asyncio.gather(flight("a"), flight("b"))

        for outer, inner in asyncio.run(main()):
            assert inner.parent_id == outer.query_id
            assert inner.query == outer.query

    def test_stack_isolation_across_plain_threads_still_holds(self):
        recorder = obs.FlightRecorder()
        barrier = threading.Barrier(4)
        mismatches: list[str] = []

        def worker(name: str):
            with recorder.record("thread", query=name) as record:
                barrier.wait()  # all four records open concurrently
                current = recorder.current()
                if current is not record:
                    mismatches.append(name)

        threads = [
            threading.Thread(target=worker, args=(f"w{n}",))
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert mismatches == []
        assert len(recorder.records()) == 4

    def test_concurrent_close_and_event_append_is_locked(self):
        # A batch record's worker threads may still append events while
        # the owner closes it; neither side may lose updates or crash.
        recorder = obs.FlightRecorder(max_events=10_000)
        record = recorder.record("batch")
        record.__enter__()
        stop = threading.Event()

        def appender():
            while not stop.is_set():
                record.event("tick")
                record.count("ticks")

        threads = [threading.Thread(target=appender) for _ in range(3)]
        for thread in threads:
            thread.start()
        record.__exit__(None, None, None)
        stop.set()
        for thread in threads:
            thread.join()
        data = record.to_dict()
        assert data["status"] == "ok"
        assert data["counts"].get("ticks", 0) == len(
            [e for e in data["events"] if e["kind"] == "tick"]
        ) + record.events_dropped


class TestTracerAttach:
    def test_worker_spans_parent_to_attached_span(self):
        tracer = obs.Tracer()
        child_ids = {}

        def worker(parent):
            with tracer.attach(parent):
                with tracer.span("task") as task:
                    child_ids["task"] = (task.span_id, task.parent_id)
                    with tracer.span("nested") as nested:
                        child_ids["nested"] = nested.parent_id

        with tracer.span("request") as request:
            thread = threading.Thread(target=worker, args=(request,))
            thread.start()
            thread.join()
        task_id, task_parent = child_ids["task"]
        assert task_parent == request.span_id
        assert child_ids["nested"] == task_id

    def test_attach_none_or_disabled_is_noop(self):
        tracer = obs.Tracer()
        with tracer.attach(None):
            with tracer.span("orphan") as span:
                assert span.parent_id is None
        disabled = obs.Tracer(enabled=False)
        with disabled.attach(disabled.span("x")):
            pass  # must not raise


class TestKernelProfiler:
    def test_records_and_derives_rates(self):
        profiler = obs.KernelProfiler()
        profiler.record("r1", 0.5, probes=10, rows_scanned=100,
                        rows_emitted=50, pruned=5)
        profiler.record("r1", 0.5, probes=10, rows_scanned=100,
                        rows_emitted=50, pruned=5)
        profiler.record("r2", 0.001, probes=1, rows_scanned=2,
                        rows_emitted=1, pruned=0)
        snapshot = profiler.snapshot()
        assert snapshot["r1"]["execs"] == 2
        assert snapshot["r1"]["wall_s"] == pytest.approx(1.0)
        assert snapshot["r1"]["rows_scanned"] == 200
        assert snapshot["r1"]["rows_per_s"] == pytest.approx(200.0, rel=1e-6)
        assert profiler.top(1) == [("r1", snapshot["r1"])]
        assert profiler.top(1, key="execs")[0][0] == "r1"

    def test_disabled_profiler_records_nothing(self):
        profiler = obs.KernelProfiler(enabled=False)
        profiler.record("r1", 1.0, probes=1, rows_scanned=1,
                        rows_emitted=1, pruned=0)
        assert len(profiler) == 0
        assert profiler.snapshot() == {}

    def test_render_top_table(self):
        profiler = obs.KernelProfiler()
        profiler.record("sigma1", 0.002, probes=3, rows_scanned=9,
                        rows_emitted=4, pruned=1)
        table = obs.render_top(profiler.snapshot())
        assert "sigma1" in table
        assert "wall_ms" in table
        assert obs.render_top({}) == (
            obs.render_top({}).splitlines()[0] + "\n"
            + obs.render_top({}).splitlines()[1] + "\n"
            + "(no kernel executions recorded)"
        )

    def test_planned_chase_attributes_kernels(self):
        program = parse_program(
            "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
            name="tc", goal="T",
        )
        database = Database([fact("E", "a", "b"), fact("E", "b", "c")])
        profiler = obs.KernelProfiler()
        with obs.observed(profile=profiler):
            chase(program, database, strategy="planned")
        snapshot = profiler.snapshot()
        assert snapshot, "planned chase recorded no kernel executions"
        for entry in snapshot.values():
            assert entry["execs"] >= 1
            assert entry["wall_s"] >= 0.0


class TestFlightIntegration:
    def test_chase_fills_phases_and_counts(self):
        program = parse_program(
            "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
            name="tc", goal="T",
        )
        database = Database([fact("E", "a", "b"), fact("E", "b", "c")])
        recorder = obs.FlightRecorder()
        with obs.observed(flight=recorder):
            with recorder.record("session", query="tc") as record:
                chase(program, database, strategy="planned")
        assert record.counts["chase_runs"] == 1
        assert record.counts["kernel_execs"] >= 1
        assert "chase" in record.phases
        assert "kernel_execute" in record.phases

    def test_cache_regions_count_into_open_record(self):
        cache = LRUCache(8)
        region = cache.region("explain")
        recorder = obs.FlightRecorder()
        with obs.observed(flight=recorder):
            with recorder.record("explain") as record:
                region.get("absent")
                region.put("k", "v")
                region.get("k")
                region.get_or_create("j", lambda: "w")
        assert record.counts["cache.explain.miss"] == 2
        assert record.counts["cache.explain.hit"] == 1

    def test_breaker_transitions_emit_flight_events(self):
        breaker = CircuitBreaker(
            window=4, failure_threshold=0.5, min_calls=2, clock=lambda: 0.0
        )
        recorder = obs.FlightRecorder()
        with obs.observed(flight=recorder):
            with recorder.record("explain") as record:
                breaker.record_failure()
                breaker.record_failure()  # opens
                with pytest.raises(Exception):
                    breaker.allow()
        kinds = [event["kind"] for event in record.events]
        assert "breaker_opened" in kinds
        assert "breaker_rejected" in kinds

    def test_service_batch_propagates_flight_and_span_context(self):
        recorder = obs.FlightRecorder()
        tracer = obs.Tracer()
        application = company_control.build()
        database = [
            company_control.own("A", "B", 0.6),
            company_control.own("B", "C", 0.7),
        ]
        with obs.observed(tracer=tracer, flight=recorder):
            with ExplanationService(max_workers=2) as service:
                session = service.session(application, database)
                queries = [fact("Control", "A", "B"),
                           fact("Control", "A", "C")]
                explanations = session.explain_batch(queries)
        assert len(explanations) == 2
        batches = [r for r in recorder.records() if r.kind == "explain_batch"]
        tasks = [r for r in recorder.records() if r.kind == "explain_task"]
        assert len(batches) == 1
        assert len(tasks) == 2
        for task in tasks:
            assert task.parent_id == batches[0].query_id
            assert task.fingerprint == batches[0].fingerprint
        # Worker spans must parent into the batch span's tree, not
        # orphan (the cross-thread propagation fix).
        spans = {span.span_id: span for span in tracer.finished()}
        batch_span = next(
            span for span in spans.values()
            if span.name == "service.explain_batch"
        )
        for span in spans.values():
            if span.name == "service.explain_task":
                assert span.parent_id == batch_span.span_id

    def test_histogram_exemplars_link_to_flight_queries(self):
        recorder = obs.FlightRecorder()
        application = company_control.build()
        database = [company_control.own("A", "B", 0.6)]
        with obs.observed(flight=recorder):
            with ExplanationService() as service:
                session = service.session(application, database)
                session.explain(fact("Control", "A", "B"))
                histogram = service.metrics.find_histogram("explain")
        exemplars = histogram.exemplars()
        assert exemplars, "no exemplars retained on explain"
        linked = {entry["exemplar"] for entry in exemplars.values()}
        known = {record.query_id for record in recorder.records()}
        assert linked <= known


class TestSLOEvaluator:
    def _metrics_with_latency(self, name, values):
        metrics = obs.MetricsRegistry()
        for value in values:
            metrics.observe(name, value)
        return metrics

    def test_latency_objective_breach_and_recovery(self):
        evaluator = obs.SLOEvaluator.from_config([
            {"kind": "latency", "name": "explain-p99",
             "histogram": "explain", "percentile": 99,
             "threshold_s": 0.1},
        ])
        slow = self._metrics_with_latency("explain", [0.5] * 10)
        report = evaluator.evaluate(slow)
        assert not report.healthy
        assert report.breaches()[0].name == "explain-p99"
        fast = self._metrics_with_latency("explain", [0.01] * 10)
        assert evaluator.evaluate(fast).healthy

    def test_empty_histogram_is_vacuously_healthy(self):
        evaluator = obs.SLOEvaluator.from_config([
            {"kind": "latency", "name": "explain-p99",
             "histogram": "explain", "threshold_s": 0.1},
        ])
        assert evaluator.evaluate(obs.MetricsRegistry()).healthy

    def test_error_rate_objective(self):
        evaluator = obs.SLOEvaluator.from_config([
            {"kind": "error_rate", "name": "deadline-budget",
             "errors": "misses", "total": "served", "max_rate": 0.1,
             "min_events": 5},
        ])
        metrics = obs.MetricsRegistry()
        metrics.increment("served", 3)
        assert evaluator.evaluate(metrics).healthy  # below min_events
        metrics.increment("served", 15)
        metrics.increment("misses", 9)
        assert not evaluator.evaluate(metrics).healthy

    def test_bad_config_raises_config_error(self):
        with pytest.raises(obs.SLOConfigError):
            obs.SLOEvaluator.from_config([{"kind": "latency"}])
        with pytest.raises(obs.SLOConfigError):
            obs.SLOEvaluator.from_config([{"kind": "nope", "name": "x"}])

    def test_publish_sets_health_gauges(self):
        evaluator = obs.SLOEvaluator.from_config([
            {"kind": "latency", "name": "explain-p99",
             "histogram": "explain", "threshold_s": 0.1},
        ])
        metrics = self._metrics_with_latency("explain", [0.5] * 4)
        evaluator.publish(metrics)
        gauges = metrics.snapshot()["gauges"]
        assert gauges["slo.explain-p99.ok"] == 0.0
        assert gauges["slo.healthy"] == 0.0
        assert gauges["slo.explain-p99.value"] > 0.1

    def test_drive_breaker_opens_on_sustained_breach(self):
        evaluator = obs.SLOEvaluator.from_config([
            {"kind": "latency", "name": "explain-p99",
             "histogram": "explain", "threshold_s": 0.1},
        ])
        metrics = self._metrics_with_latency("explain", [0.5] * 4)
        breaker = CircuitBreaker(
            window=4, failure_threshold=0.5, min_calls=2, clock=lambda: 0.0
        )
        for _ in range(3):
            evaluator.drive_breaker(breaker, metrics)
        assert breaker.state == "open"
