"""Tests for the static program analysis (linearity, guardedness,
wardedness, termination verdicts)."""

from repro.datalog import parse_program
from repro.datalog.analysis import (
    TerminationVerdict,
    affected_positions,
    check_wardedness,
    dangerous_variables,
    is_guarded,
    is_linear,
    termination_guarantee,
)


class TestLinearity:
    def test_company_control_is_linear(self, control_app):
        assert is_linear(control_app.program)

    def test_stress_test_is_linear(self, stress_app):
        assert is_linear(stress_app.program)

    def test_close_links_is_not_linear(self, close_links_app):
        """λ3 joins two intensional Control atoms."""
        assert not is_linear(close_links_app.program)


class TestGuardedness:
    def test_single_atom_bodies_are_guarded(self):
        program = parse_program("P(x, y) -> Q(x).", name="g")
        assert is_guarded(program)

    def test_join_without_guard(self):
        program = parse_program("P(x), R(y) -> Q(x, y).", name="ug")
        assert not is_guarded(program)

    def test_join_with_covering_atom(self):
        program = parse_program("Big(x, y, z), P(x), R(y) -> Q(x, y, z).", name="g2")
        assert is_guarded(program)


class TestAffectedPositions:
    def test_no_existentials_no_affected_positions(self, control_app):
        assert affected_positions(control_app.program) == frozenset()

    def test_existential_head_position_affected(self):
        program = parse_program("Person(x) -> HasParent(x, z).", name="p")
        assert affected_positions(program) == frozenset({("HasParent", 1)})

    def test_propagation_through_rules(self):
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: HasParent(x, z) -> Ancestor(z).
            """,
            name="p",
        )
        affected = affected_positions(program)
        assert ("Ancestor", 0) in affected

    def test_mixed_occurrence_not_affected(self):
        """A variable also bound at an unaffected position is safe."""
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: HasParent(x, z), Named(z) -> Known(z).
            """,
            name="p",
        )
        assert ("Known", 0) not in affected_positions(program)


class TestDangerousVariables:
    def test_dangerous_variable_detected(self):
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: HasParent(x, z) -> Ancestor(z).
            """,
            name="p",
        )
        affected = affected_positions(program)
        rule = program.rule("r2")
        dangerous = dangerous_variables(rule, affected)
        assert {v.name for v in dangerous} == {"z"}


class TestWardedness:
    def test_paper_applications_are_warded(self, control_app, stress_app,
                                           close_links_app):
        for application in (control_app, stress_app, close_links_app):
            assert check_wardedness(application.program).warded

    def test_classic_warded_program(self):
        """The standard warded example: dangerous z confined to one atom."""
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: HasParent(x, z), Person(x) -> KnowsAncestor(x, z).
            """,
            name="w",
        )
        report = check_wardedness(program)
        assert report.warded

    def test_unwarded_join_on_dangerous_variable(self):
        """Joining two atoms on a harmful variable breaks wardedness."""
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: Person(y) -> HasParent(y, z).
            r3: HasParent(x, z), HasParent(y, z), x != y -> Siblingish(x, y, z).
            """,
            name="uw",
        )
        report = check_wardedness(program)
        assert not report.warded
        assert "r3" in report.offending_rules
        assert "NOT warded" in report.describe()


class TestTerminationVerdicts:
    def test_existential_free_programs(self, control_app, stress_app):
        for application in (control_app, stress_app):
            assert termination_guarantee(application.program) is \
                TerminationVerdict.NO_EXISTENTIALS

    def test_warded_existential_program(self):
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: HasParent(x, z), Person(x) -> KnowsAncestor(x, z).
            """,
            name="w",
        )
        assert termination_guarantee(program) is TerminationVerdict.WARDED

    def test_unknown_fragment(self):
        program = parse_program(
            """
            r1: Person(x) -> HasParent(x, z).
            r2: Person(y) -> HasParent(y, z).
            r3: HasParent(x, z), HasParent(y, z), x != y -> Siblingish(x, y, z).
            """,
            name="uw",
        )
        assert termination_guarantee(program) is TerminationVerdict.UNKNOWN
