"""Property-based parser fuzzing: render → parse → render is a fixpoint.

Random rules are assembled from the full feature surface (conditions,
arithmetic, aggregates, negation, assignments, constants of every kind),
rendered with ``str()`` and re-parsed; the round trip must be exact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Atom, Constraint, parse_constraint, parse_rule
from repro.datalog.aggregates import AggregateSpec
from repro.datalog.conditions import BinaryOp, Comparison
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

predicates = st.sampled_from(["Own", "Risk", "Debts", "HasCapital", "P", "Q"])
variable_names = st.sampled_from(["x", "y", "z", "s", "v", "c", "d", "p1"])
entity_constants = st.sampled_from(["A", "B", "IrishBank", "GridCo"])
string_constants = st.sampled_from(["long", "short", "ch1"])
number_constants = st.one_of(
    st.integers(min_value=0, max_value=999),
    st.sampled_from([0.5, 0.25, 3.75, 11.0]),
)

terms = st.one_of(
    variable_names.map(Variable),
    entity_constants.map(Constant),
    string_constants.map(Constant),
    number_constants.map(Constant),
)


@st.composite
def atoms(draw, min_vars: int = 0):
    predicate = draw(predicates)
    arity = draw(st.integers(min_value=max(1, min_vars), max_value=4))
    chosen = [draw(terms) for _ in range(arity)]
    for index in range(min_vars):
        chosen[index] = Variable(draw(variable_names))
    return Atom(predicate, tuple(chosen))


@st.composite
def expressions(draw, variables):
    depth = draw(st.integers(min_value=0, max_value=2))
    if depth == 0 or not variables:
        if variables and draw(st.booleans()):
            return draw(st.sampled_from(sorted(variables, key=str)))
        return Constant(draw(number_constants))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(expressions(variables))
    right = Constant(draw(st.integers(min_value=1, max_value=9)))
    return BinaryOp(op, left, right)


@st.composite
def rules(draw):
    body = tuple(
        draw(atoms(min_vars=1))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    body_vars = {v for atom in body for v in atom.variable_set()}
    conditions = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        op = draw(st.sampled_from([">", "<", ">=", "<=", "!="]))
        conditions.append(Comparison(
            op,
            draw(expressions(body_vars)),
            draw(expressions(body_vars)),
        ))
    negated = ()
    if body_vars and draw(st.booleans()):
        some = draw(st.sampled_from(sorted(body_vars, key=str)))
        negated = (Atom("Blocked", (some,)),)
    aggregate = None
    head_terms = tuple(
        draw(st.sampled_from(sorted(body_vars, key=str)))
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ) if body_vars else (Constant("K"),)
    if body_vars and draw(st.booleans()):
        result = Variable("agg_out")
        argument = draw(st.sampled_from(sorted(body_vars, key=str)))
        aggregate = AggregateSpec(
            result, draw(st.sampled_from(["sum", "min", "max", "count"])),
            argument,
        )
        head_terms = head_terms + (result,)
    head = Atom("Head", head_terms)
    return Rule(
        label="fz",
        body=body,
        head=head,
        conditions=tuple(conditions),
        aggregate=aggregate,
        negated=negated,
    )


class TestRoundTrip:
    @settings(deadline=None, max_examples=150)
    @given(rules())
    def test_render_parse_render_fixpoint(self, rule):
        text = str(rule)
        reparsed = parse_rule(text, label="fz")
        assert str(reparsed) == text

    @settings(deadline=None, max_examples=100)
    @given(rules())
    def test_reparsed_rule_structurally_equal(self, rule):
        reparsed = parse_rule(str(rule), label="fz")
        assert reparsed.body == rule.body
        assert reparsed.head == rule.head
        assert reparsed.negated == rule.negated
        assert (reparsed.aggregate is None) == (rule.aggregate is None)
        if rule.aggregate is not None:
            assert reparsed.aggregate.function == rule.aggregate.function
            assert reparsed.aggregate.result == rule.aggregate.result

    @settings(deadline=None, max_examples=60)
    @given(rules())
    def test_constraint_roundtrip(self, rule):
        constraint = Constraint(
            label="cz", body=rule.body, conditions=(), negated=rule.negated
        )
        reparsed = parse_constraint(str(constraint), label="cz")
        assert str(reparsed) == str(constraint)
