"""Tests for the error-archetype corruptions (§6.1)."""

import random

import pytest

from repro.datalog.atoms import fact
from repro.study.archetypes import (
    ALL_ARCHETYPES,
    CorruptionError,
    ErrorArchetype,
    corrupt,
)

CONTROL_GRAPH = frozenset({
    fact("Own", "A", "B", 0.6),
    fact("Own", "B", "C", 0.55),
    fact("Own", "B", "D", 0.3),
    fact("Own", "E", "D", 0.25),
    fact("Control", "A", "B"),
    fact("Control", "A", "C"),
})


def rng(seed=0):
    return random.Random(seed)


class TestWrongEdge:
    def test_exactly_one_fact_changes(self):
        corrupted = corrupt(CONTROL_GRAPH, ErrorArchetype.WRONG_EDGE, rng())
        assert len(corrupted.facts) == len(CONTROL_GRAPH)
        assert len(CONTROL_GRAPH - corrupted.facts) == 1
        assert len(corrupted.facts - CONTROL_GRAPH) == 1

    def test_marks_archetype(self):
        corrupted = corrupt(CONTROL_GRAPH, ErrorArchetype.WRONG_EDGE, rng())
        assert corrupted.archetype is ErrorArchetype.WRONG_EDGE
        assert not corrupted.is_correct

    def test_redirection_targets_existing_entity(self):
        corrupted = corrupt(CONTROL_GRAPH, ErrorArchetype.WRONG_EDGE, rng(3))
        new_fact = next(iter(corrupted.facts - CONTROL_GRAPH))
        entities = {"A", "B", "C", "D", "E"}
        for term in new_fact.terms:
            if isinstance(term.value, str):
                assert term.value in entities

    def test_channel_labels_never_treated_as_entities(self):
        graph = frozenset({
            fact("Risk", "F", 8, "short"),
            fact("Risk", "F", 2, "long"),
            fact("LongTermDebts", "A", "F", 2),
            fact("ShortTermDebts", "B", "F", 8),
        })
        for seed in range(10):
            corrupted = corrupt(graph, ErrorArchetype.WRONG_EDGE, rng(seed))
            for changed in corrupted.facts - graph:
                for term in changed.terms:
                    if isinstance(term.value, str):
                        assert term.value not in ("long", "short")


class TestWrongValue:
    def test_numeric_property_altered(self):
        corrupted = corrupt(CONTROL_GRAPH, ErrorArchetype.WRONG_VALUE, rng())
        removed = next(iter(CONTROL_GRAPH - corrupted.facts))
        added = next(iter(corrupted.facts - CONTROL_GRAPH))
        assert removed.predicate == added.predicate
        # entity arguments unchanged, a number changed
        assert removed.terms[0] == added.terms[0]
        assert removed.terms[2] != added.terms[2]

    def test_no_numeric_site_raises(self):
        graph = frozenset({fact("Control", "A", "B")})
        with pytest.raises(CorruptionError):
            corrupt(graph, ErrorArchetype.WRONG_VALUE, rng())

    def test_integer_values_stay_positive(self):
        graph = frozenset({fact("HasCapital", "A", 1)})
        for seed in range(10):
            corrupted = corrupt(graph, ErrorArchetype.WRONG_VALUE, rng(seed))
            added = next(iter(corrupted.facts))
            assert added.terms[1].value >= 1


class TestWrongAggregation:
    def test_values_swapped_between_contributions(self):
        corrupted = corrupt(
            CONTROL_GRAPH, ErrorArchetype.WRONG_AGGREGATION, rng()
        )
        changed = corrupted.facts - CONTROL_GRAPH
        assert len(changed) == 2
        # the multiset of values is preserved — only the pairing changed
        original_values = sorted(
            f.terms[2].value for f in CONTROL_GRAPH if f.predicate == "Own"
        )
        new_values = sorted(
            f.terms[2].value for f in corrupted.facts if f.predicate == "Own"
        )
        assert original_values == new_values

    def test_no_shared_target_raises(self):
        graph = frozenset({
            fact("Own", "A", "B", 0.6),
            fact("Own", "C", "D", 0.7),
        })
        with pytest.raises(CorruptionError):
            corrupt(graph, ErrorArchetype.WRONG_AGGREGATION, rng())


class TestWrongChain:
    def test_chain_rewired(self):
        corrupted = corrupt(CONTROL_GRAPH, ErrorArchetype.WRONG_CHAIN, rng())
        assert corrupted.facts != CONTROL_GRAPH
        assert len(corrupted.facts) == len(CONTROL_GRAPH)

    def test_no_chain_raises(self):
        graph = frozenset({fact("Own", "A", "B", 0.6)})
        with pytest.raises(CorruptionError):
            corrupt(graph, ErrorArchetype.WRONG_CHAIN, rng())


class TestGeneralProperties:
    @pytest.mark.parametrize("archetype", ALL_ARCHETYPES)
    def test_corruption_always_differs(self, archetype):
        for seed in range(5):
            try:
                corrupted = corrupt(CONTROL_GRAPH, archetype, rng(seed))
            except CorruptionError:
                continue
            assert corrupted.facts != CONTROL_GRAPH
            assert corrupted.note
