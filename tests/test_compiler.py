"""Tests for the compile layer: content hashing, once-per-program work,
secondary pipelines, and the serialized warm-start artifact."""

import pytest

from repro.apps import company_control, figures, stress_test
from repro.core import (
    CompilationError,
    CompiledProgram,
    Explainer,
    compilation_fingerprint,
    compile_program,
    program_key,
)
from repro.core import structural as structural_module
from repro.datalog import fact
from repro.datalog.parser import parse_program
from repro.llm import SimulatedLLM


class TestFingerprints:
    def test_fingerprint_is_deterministic(self, control_app):
        first = compilation_fingerprint(control_app.program, control_app.glossary)
        second = compilation_fingerprint(
            company_control.build().program, company_control.build().glossary
        )
        assert first == second

    def test_fingerprint_distinguishes_programs(self, control_app, stress_app):
        assert compilation_fingerprint(
            control_app.program, control_app.glossary
        ) != compilation_fingerprint(stress_app.program, stress_app.glossary)

    def test_fingerprint_distinguishes_rules(self, control_app):
        variant = parse_program(
            "sigma1: Own(x, y, s), s > 0.6 -> Control(x, y).",
            name="company_control", goal="Control",
        )
        assert compilation_fingerprint(
            variant, control_app.glossary
        ) != compilation_fingerprint(control_app.program, control_app.glossary)

    def test_fingerprint_distinguishes_enhancer_config(self, control_app):
        bare = compilation_fingerprint(control_app.program, control_app.glossary)
        seeded = compilation_fingerprint(
            control_app.program, control_app.glossary,
            llm=SimulatedLLM(seed=3, faithful=True),
        )
        reseeded = compilation_fingerprint(
            control_app.program, control_app.glossary,
            llm=SimulatedLLM(seed=4, faithful=True),
        )
        assert len({bare, seeded, reseeded}) == 3

    def test_program_key_ignores_enhancer(self, control_app):
        compiled = compile_program(
            control_app.program, control_app.glossary,
            llm=SimulatedLLM(seed=3, faithful=True),
        )
        assert compiled.program_key == program_key(
            control_app.program, control_app.glossary
        )


class TestCompileOnce:
    def test_two_instances_one_compilation(self, control_app, monkeypatch):
        """The acceptance property: compiling once and explaining across
        two different database instances performs structural analysis and
        template enhancement exactly once."""
        analysis_calls = []
        original_init = structural_module.StructuralAnalysis.__init__

        def counting_init(self, program, max_paths=10_000):
            analysis_calls.append(program.name)
            original_init(self, program, max_paths=max_paths)

        monkeypatch.setattr(
            structural_module.StructuralAnalysis, "__init__", counting_init
        )
        llm = SimulatedLLM(seed=0, faithful=True)
        compiled = control_app.compile(llm=llm)
        assert len(analysis_calls) == 1
        assert compiled.stats.enhancement_runs == 1
        enhancement_calls = llm.usage.calls
        assert enhancement_calls > 0

        first = control_app.reason([
            company_control.own("A", "B", 0.6),
            company_control.own("B", "C", 0.7),
        ])
        second = control_app.reason([
            company_control.own("X", "Y", 0.9),
        ])
        for result, query in (
            (first, fact("Control", "A", "C")),
            (second, fact("Control", "X", "Y")),
        ):
            explainer = Explainer(result, compiled=compiled)
            explanation = explainer.explain(query)
            assert explanation.text
            assert explanation.constants()

        assert len(analysis_calls) == 1, "binding re-ran structural analysis"
        assert compiled.stats.structural_analyses == 1
        assert compiled.stats.enhancement_runs == 1
        assert llm.usage.calls == enhancement_calls, "binding re-enhanced"

    def test_compiled_program_must_match_result(self, control_app, stress_app):
        compiled = compile_program(control_app.program, control_app.glossary)
        result = stress_app.reason([
            stress_test.shock("A", 6), stress_test.has_capital("A", 5),
        ])
        with pytest.raises(ValueError):
            Explainer(result, compiled=compiled)

    def test_secondary_pipeline_shared_across_bindings(self):
        scenario = figures.figure8_instance()
        compiled = scenario.application.compile()
        result = scenario.run()
        first = Explainer(result, compiled=compiled)
        # Risk is intensional but neither the goal nor critical: a
        # drill-down query forces a secondary pipeline.
        risk = next(f for f in result.derived() if f.predicate == "Risk")
        first.explain(risk)
        assert compiled.stats.secondary_pipelines == 1
        second = Explainer(scenario.run(), compiled=compiled)
        second.explain(risk)
        assert compiled.stats.secondary_pipelines == 1, "pipeline rebuilt"


class TestSerializedArtifact:
    def test_round_trip_restores_enhanced_texts(self, control_app):
        compiled = control_app.compile(llm=SimulatedLLM(seed=5, faithful=True))
        compiled.store.approve_all()
        payload = compiled.export_payload()
        restored = CompiledProgram.from_payload(
            payload, control_app.program, control_app.glossary
        )
        assert restored.fingerprint == compiled.fingerprint
        for original, loaded in zip(
            compiled.store.templates(), restored.store.templates()
        ):
            assert loaded.deterministic_text == original.deterministic_text
            assert loaded.enhanced_texts == original.enhanced_texts
            assert loaded.approved == original.approved

    def test_round_trip_includes_secondary_pipelines(self):
        scenario = figures.figure8_instance()
        compiled = scenario.application.compile(
            llm=SimulatedLLM(seed=2, faithful=True)
        )
        explainer = Explainer(scenario.run(), compiled=compiled)
        risk = next(
            f for f in explainer.result.derived() if f.predicate == "Risk"
        )
        explainer.explain(risk)
        payload = compiled.export_payload()
        restored = CompiledProgram.from_payload(
            payload, scenario.application.program, scenario.application.glossary
        )
        assert restored.secondary_goals() == compiled.secondary_goals()

    def test_stale_artifact_rejected(self, control_app, stress_app):
        payload = compile_program(
            control_app.program, control_app.glossary
        ).export_payload()
        with pytest.raises(CompilationError):
            CompiledProgram.from_payload(
                payload, stress_app.program, stress_app.glossary
            )

    def test_unknown_format_rejected(self, control_app):
        payload = compile_program(
            control_app.program, control_app.glossary
        ).export_payload()
        payload["format"] = "repro-compiled/999"
        with pytest.raises(CompilationError):
            CompiledProgram.from_payload(
                payload, control_app.program, control_app.glossary
            )
