"""Tests for negation, stratification and negative constraints
(paper, Section 3, "Vadalog Extensions")."""

import pytest

from repro.datalog import (
    Constraint,
    SafetyError,
    StratificationError,
    fact,
    parse_constraint,
    parse_program,
    parse_rule,
    stratify,
)
from repro.engine import reason


class TestParsingNegation:
    def test_negated_atom_parsed(self):
        rule = parse_rule("P(x), not Q(x) -> R(x)")
        assert len(rule.negated) == 1
        assert rule.negated[0].predicate == "Q"
        assert rule.has_negation

    def test_multiple_negated_atoms(self):
        rule = parse_rule("P(x, y), not Q(x), not Q(y) -> R(x, y)")
        assert len(rule.negated) == 2

    def test_str_roundtrip(self):
        rule = parse_rule("P(x), not Q(x) -> R(x)")
        assert str(parse_rule(str(rule))) == str(rule)

    def test_negated_variable_must_be_bound(self):
        with pytest.raises(SafetyError):
            parse_rule("P(x), not Q(z) -> R(x)")

    def test_constraint_parsed(self):
        constraint = parse_constraint("Alert(x, y), Vetoed(x) -> false")
        assert isinstance(constraint, Constraint)
        assert constraint.body_predicates() == ("Alert", "Vetoed")

    def test_constraint_with_condition(self):
        constraint = parse_constraint("Own(x, y, s), s > 1 -> false")
        assert len(constraint.conditions) == 1

    def test_constraint_str(self):
        constraint = parse_constraint("P(x), not Q(x) -> false")
        assert str(constraint).endswith("-> false")

    def test_parse_rule_rejects_constraint(self):
        from repro.datalog import ParseError

        with pytest.raises(ParseError):
            parse_rule("P(x) -> false")

    def test_program_collects_constraints(self):
        program = parse_program(
            "r1: P(x) -> Q(x). c1: Q(x), Bad(x) -> false.", name="p", goal="Q"
        )
        assert len(program) == 1
        assert len(program.constraints) == 1
        assert program.has_negation is False

    def test_false_as_predicate_name_still_possible(self):
        # An atom False(x) (capitalized, with parens) is a normal atom.
        rule = parse_rule("P(x) -> False(x)")
        assert rule.head.predicate == "False"


class TestStratification:
    def test_negation_free_program_is_one_stratum(self):
        program = parse_program(
            "r1: P(x) -> Q(x). r2: Q(x) -> R(x).", name="p"
        )
        assert stratify(program).count == 1

    def test_negation_splits_strata(self):
        program = parse_program(
            """
            r1: E(x) -> P(x).
            r2: E(x), not P(x) -> Q(x).
            """,
            name="p",
        )
        plan = stratify(program)
        assert plan.stratum_of["P"] < plan.stratum_of["Q"]

    def test_recursion_through_negation_rejected(self):
        program = parse_program(
            """
            r1: E(x), not Q(x) -> P(x).
            r2: E(x), not P(x) -> Q(x).
            """,
            name="bad",
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_positive_recursion_allowed(self):
        program = parse_program(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            neg:  N(x), not T(x, x) -> Acyclic(x).
            """,
            name="p",
        )
        plan = stratify(program)
        assert plan.stratum_of["T"] < plan.stratum_of["Acyclic"]

    def test_describe(self):
        program = parse_program(
            "r1: E(x) -> P(x). r2: E(x), not P(x) -> Q(x).", name="p"
        )
        assert "stratum 0" in stratify(program).describe()


class TestNegationSemantics:
    def test_negation_as_absence(self):
        program = parse_program(
            "r1: Node(x), not Blocked(x) -> Open(x).", name="p", goal="Open"
        )
        result = reason(program, [
            fact("Node", "A"), fact("Node", "B"), fact("Blocked", "B"),
        ])
        assert result.answers() == (fact("Open", "A"),)

    def test_negation_over_derived_predicate(self):
        """Stratified evaluation: Q's negation sees the complete P."""
        program = parse_program(
            """
            r1: E(x, y) -> Reaches(y).
            r2: Node(x), not Reaches(x) -> Root(x).
            """,
            name="p", goal="Root",
        )
        result = reason(program, [
            fact("Node", "A"), fact("Node", "B"), fact("Node", "C"),
            fact("E", "A", "B"), fact("E", "B", "C"),
        ])
        assert result.answers() == (fact("Root", "A"),)

    def test_negation_with_recursion_below(self):
        """Unreachable pairs via the complement of transitive closure."""
        program = parse_program(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            sep:  Node(x), Node(y), x != y, not T(x, y) -> Unreachable(x, y).
            """,
            name="p", goal="Unreachable",
        )
        result = reason(program, [
            fact("Node", "A"), fact("Node", "B"), fact("Node", "C"),
            fact("E", "A", "B"), fact("E", "B", "C"),
        ])
        unreachable = {(str(f.terms[0]), str(f.terms[1]))
                       for f in result.answers()}
        assert ("B", "A") in unreachable
        assert ("C", "A") in unreachable
        assert ("A", "C") not in unreachable

    def test_negated_record_provenance(self):
        program = parse_program(
            "r1: Node(x), not Blocked(x) -> Open(x).", name="p", goal="Open"
        )
        result = reason(program, [fact("Node", "A")])
        record = result.chase_result.record_for(fact("Open", "A"))
        assert record.parents == (fact("Node", "A"),)


class TestConstraints:
    PROGRAM = parse_program(
        """
        r1: Own(x, y, s), s > 0.5 -> Control(x, y).
        c1: Control(x, y), Control(y, x), x != y -> false.
        """,
        name="mutual", goal="Control",
    )

    def test_no_violation_on_clean_data(self):
        result = reason(self.PROGRAM, [fact("Own", "A", "B", 0.7)])
        assert result.violations == ()

    def test_violation_reported_with_witnesses(self):
        result = reason(self.PROGRAM, [
            fact("Own", "A", "B", 0.7), fact("Own", "B", "A", 0.6),
        ])
        assert len(result.violations) == 2  # both orientations match
        witnesses = set(result.violations[0].witnesses)
        assert witnesses == {
            fact("Control", "A", "B"), fact("Control", "B", "A"),
        }

    def test_constraint_with_negation(self):
        program = parse_program(
            """
            r1: P(x) -> Q(x).
            c1: Q(x), not Allowed(x) -> false.
            """,
            name="p", goal="Q",
        )
        clean = reason(program, [fact("P", "A"), fact("Allowed", "A")])
        assert clean.violations == ()
        dirty = reason(program, [fact("P", "A")])
        assert len(dirty.violations) == 1


class TestGoldenPowers:
    @pytest.fixture()
    def screened(self):
        from repro.apps import golden_powers as gp

        app = gp.build()
        result = app.reason([
            gp.company("EagleFund"),
            gp.own("EagleFund", "GridCo", 0.4),
            gp.own("EagleFund", "PipeCo", 0.6),
            gp.own("PipeCo", "GridCo", 0.2),
            gp.foreign("EagleFund"), gp.strategic("GridCo"),
            gp.vetoed("EagleFund"),
            gp.own("AllyFund", "PortCo", 0.8),
            gp.foreign("AllyFund"), gp.strategic("PortCo"),
            gp.exempt("AllyFund"),
        ])
        return gp, app, result

    def test_alert_raised_for_joint_takeover(self, screened):
        gp, __, result = screened
        assert gp.alert("EagleFund", "GridCo") in result.answers()

    def test_exempt_investor_not_alerted(self, screened):
        gp, __, result = screened
        assert gp.alert("AllyFund", "PortCo") not in result.answers()

    def test_veto_constraint_violated(self, screened):
        __, __, result = screened
        assert len(result.violations) == 1
        assert result.violations[0].constraint.label == "kappa1"

    def test_alert_explained_through_joint_control(self, screened):
        from repro.core import Explainer, completeness_ratio

        gp, app, result = screened
        explainer = Explainer(result, app.glossary)
        explanation = explainer.explain(
            gp.alert("EagleFund", "GridCo"), prefer_enhanced=False
        )
        assert "it is not the case that" in explanation.text
        constants = explainer.proof_constants(gp.alert("EagleFund", "GridCo"))
        assert completeness_ratio(explanation.text, constants) == 1.0

    def test_violation_report(self, screened):
        from repro.core import Explainer

        gp, app, result = screened
        explainer = Explainer(result, app.glossary)
        report = explainer.explain_violation(
            result.violations[0], prefer_enhanced=False
        )
        assert "violates constraint kappa1" in report
        assert "vetoed" in report

    def test_structural_analysis_handles_negation(self, screened):
        from repro.core import StructuralAnalysis

        __, app, __ = screened
        analysis = StructuralAnalysis(app.program)
        # Alert paths extend the company-control paths by gamma1.
        assert any(
            "gamma1" in path.labels for path in analysis.simple_paths
        )


class TestNegationVerbalization:
    def test_rule_sentence_mentions_absence(self):
        from repro.apps import golden_powers as gp
        from repro.core import Verbalizer

        app = gp.build()
        verbalizer = Verbalizer(app.glossary)
        sentence = verbalizer.rule_sentence(app.program.rule("gamma1"))
        assert "it is not the case that <x> holds a golden-power exemption" \
            in sentence

    def test_step_sentence_mentions_absence(self):
        from repro.apps import golden_powers as gp
        from repro.core import Verbalizer

        app = gp.build()
        result = app.reason([
            gp.own("F", "S", 0.9), gp.foreign("F"), gp.strategic("S"),
        ])
        verbalizer = Verbalizer(app.glossary)
        record = result.chase_result.record_for(gp.alert("F", "S"))
        sentence = verbalizer.step_sentence(record)
        assert "there is no record that F holds a golden-power exemption" \
            in sentence


class TestDependencyGraphNegation:
    def test_negated_edges_marked(self):
        from repro.datalog import DependencyGraph

        program = parse_program(
            "r1: E(x) -> P(x). r2: E(x), not P(x) -> Q(x).", name="p"
        )
        graph = DependencyGraph(program)
        negated = [edge for edge in graph.edges if edge.negated]
        assert len(negated) == 1
        assert (negated[0].source, negated[0].target) == ("P", "Q")
        assert "not r2" in str(negated[0])
