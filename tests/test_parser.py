"""Unit tests for the Vadalog-like parser."""

import pytest

from repro.datalog.conditions import BinaryOp, Comparison
from repro.datalog.errors import ParseError
from repro.datalog.parser import iter_rules, parse_program, parse_rule
from repro.datalog.terms import Constant, Variable


class TestTermConventions:
    def test_lowercase_identifiers_are_variables(self):
        rule = parse_rule("Own(x, y, s) -> Control(x, y)")
        assert Variable("x") in rule.body[0].variable_set()

    def test_uppercase_identifiers_are_constants(self):
        rule = parse_rule("Own(IrishBank, y, s) -> Control(IrishBank, y)")
        assert rule.body[0].terms[0] == Constant("IrishBank")

    def test_quoted_strings_are_constants(self):
        rule = parse_rule('Risk(c, e, t) -> Marked(c, "long")')
        assert rule.head.terms[1] == Constant("long")

    def test_integer_and_float_literals(self):
        rule = parse_rule("P(x), x > 5 -> Q(x, 0.5)")
        assert rule.head.terms[1] == Constant(0.5)

    def test_negative_number_in_expression(self):
        rule = parse_rule("P(x), x > -3 -> Q(x)")
        condition = rule.conditions[0]
        assert condition.right == Constant(-3)


class TestRuleShapes:
    def test_paper_sigma1(self):
        rule = parse_rule("Own(x, y, s), s > 0.5 -> Control(x, y)", label="sigma1")
        assert rule.label == "sigma1"
        assert len(rule.body) == 1
        assert rule.conditions == (
            Comparison(">", Variable("s"), Constant(0.5)),
        )
        assert rule.head.predicate == "Control"

    def test_paper_sigma3_aggregate(self):
        rule = parse_rule(
            "Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y)"
        )
        assert rule.has_aggregate
        assert rule.aggregate.function == "sum"
        assert rule.aggregate.result == Variable("ts")
        assert rule.aggregate.group_by == (Variable("x"), Variable("y"))

    def test_multiple_conditions(self):
        rule = parse_rule("P(x, y), x > 1, y < 5, x != y -> Q(x)")
        assert len(rule.conditions) == 3

    def test_single_equals_means_comparison(self):
        rule = parse_rule('Risk(c, e, t), t = "long" -> LongRisk(c)')
        assert rule.conditions[0].op == "=="

    def test_arithmetic_expression_condition(self):
        rule = parse_rule("P(x, y), x + y > 2 * x -> Q(x)")
        condition = rule.conditions[0]
        assert isinstance(condition.left, BinaryOp)
        assert condition.left.op == "+"
        assert isinstance(condition.right, BinaryOp)
        assert condition.right.op == "*"

    def test_parenthesized_expression(self):
        rule = parse_rule("P(x), (x + 1) * 2 > 4 -> Q(x)")
        assert isinstance(rule.conditions[0].left, BinaryOp)

    def test_trailing_dot_accepted(self):
        rule = parse_rule("P(x) -> Q(x).")
        assert rule.head.predicate == "Q"

    def test_two_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x, v, w), a = sum(v), b = sum(w) -> Q(x, a, b)")


class TestProgramParsing:
    PROGRAM = """
    % company control (paper, Section 5)
    sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
    sigma2: Company(x) -> Control(x, x).
    sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
    """

    def test_labels_respected(self):
        program = parse_program(self.PROGRAM, name="cc", goal="Control")
        assert [rule.label for rule in program.rules] == [
            "sigma1", "sigma2", "sigma3",
        ]

    def test_comments_ignored(self):
        program = parse_program(self.PROGRAM, name="cc")
        assert len(program) == 3

    def test_auto_labels_when_missing(self):
        rules = list(iter_rules("P(x) -> Q(x). Q(x) -> R(x)."))
        assert [rule.label for rule in rules] == ["r1", "r2"]

    def test_goal_recorded(self):
        program = parse_program(self.PROGRAM, name="cc", goal="Control")
        assert program.goal == "Control"

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("% nothing here")

    def test_hash_comments_supported(self):
        program = parse_program("# c\nP(x) -> Q(x).", name="p")
        assert len(program) == 1


class TestParseErrors:
    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("@@@@")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x), Q(x)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x -> Q(x)")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P(x) -> Q(x) extra")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_rule("P(x) -> ")
        assert "end of input" in str(info.value)


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "Own(x, y, s), s > 0.5 -> Control(x, y)",
        "Company(x) -> Control(x, x)",
        "Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y)",
        "Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f)",
        'Default(d), LongTermDebts(d, c, v), el = sum(v) -> Risk(c, el, "long")',
    ])
    def test_parse_render_parse_is_stable(self, text):
        first = parse_rule(text)
        second = parse_rule(str(first))
        assert str(first) == str(second)
