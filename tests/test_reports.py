"""Tests for business-report generation."""

import pytest

from repro.apps import figures, golden_powers
from repro.core import Explainer, ReportBuilder, completeness_ratio
from repro.datalog.atoms import fact


@pytest.fixture(scope="module")
def stress_report_builder():
    scenario = figures.figure12_stress_instance()
    result = scenario.run()
    explainer = Explainer(result, scenario.application.glossary)
    return explainer, ReportBuilder(explainer)


class TestReportContent:
    def test_default_targets_are_goal_facts(self, stress_report_builder):
        __, builder = stress_report_builder
        report = builder.build(prefer_enhanced=False)
        headings = [section.heading for section in report.sections]
        assert headings == [
            "Default(A)", "Default(B)", "Default(C)", "Default(F)",
        ]

    def test_explicit_targets(self, stress_report_builder):
        __, builder = stress_report_builder
        report = builder.build(
            targets=[fact("Default", "F")], prefer_enhanced=False
        )
        assert len(report) == 1

    def test_report_is_complete(self, stress_report_builder):
        explainer, builder = stress_report_builder
        report = builder.build(prefer_enhanced=False)
        text = report.to_text()
        constants = explainer.proof_constants(fact("Default", "F"))
        assert completeness_ratio(text, constants) == 1.0

    def test_title_override(self, stress_report_builder):
        __, builder = stress_report_builder
        report = builder.build(title="Quarterly stress run", prefer_enhanced=False)
        assert report.title == "Quarterly stress run"
        assert report.to_text().startswith("Quarterly stress run")

    def test_constants_aggregated(self, stress_report_builder):
        __, builder = stress_report_builder
        report = builder.build(prefer_enhanced=False)
        assert {"A", "B", "C", "F", "14"} <= report.constants()


class TestRendering:
    def test_text_rendering_numbers_sections(self, stress_report_builder):
        __, builder = stress_report_builder
        text = builder.build(prefer_enhanced=False).to_text()
        assert "1. Default(A)" in text
        assert "4. Default(F)" in text

    def test_markdown_rendering(self, stress_report_builder):
        __, builder = stress_report_builder
        markdown = builder.build(prefer_enhanced=False).to_markdown()
        assert markdown.startswith("# Reasoning report")
        assert "## Default(F)" in markdown
        assert "*Reasoning paths:" in markdown

    def test_rotating_template_versions(self):
        from repro.llm import SimulatedLLM

        scenario = figures.figure12_stress_instance()
        result = scenario.run()
        explainer = Explainer(
            result, scenario.application.glossary,
            llm=SimulatedLLM(seed=5, faithful=True), enhanced_versions=3,
        )
        report = ReportBuilder(explainer).build(
            targets=[fact("Default", "B"), fact("Default", "C")],
            rotate_template_versions=True,
        )
        # Both sections share the Pi2 prefix story; with rotation their
        # phrasings differ.
        first, second = (s.explanation.text for s in report.sections)
        assert first.split(".")[0] != second.split(".")[0]


class TestViolationSections:
    def test_violations_included(self):
        app = golden_powers.build()
        result = app.reason([
            golden_powers.own("F", "S", 0.9),
            golden_powers.foreign("F"), golden_powers.strategic("S"),
            golden_powers.vetoed("F"),
        ])
        explainer = Explainer(result, app.glossary)
        report = ReportBuilder(explainer).build(prefer_enhanced=False)
        assert len(report.violation_texts) == 1
        assert "Constraint violations" in report.to_text()
        assert "⚠" in report.to_markdown()

    def test_violations_can_be_suppressed(self):
        app = golden_powers.build()
        result = app.reason([
            golden_powers.own("F", "S", 0.9),
            golden_powers.foreign("F"), golden_powers.strategic("S"),
            golden_powers.vetoed("F"),
        ])
        explainer = Explainer(result, app.glossary)
        report = ReportBuilder(explainer).build(
            prefer_enhanced=False, include_violations=False
        )
        assert report.violation_texts == ()
