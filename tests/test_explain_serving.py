"""Indexed provenance and memoized explanation serving.

Two contracts are pinned here:

* the :class:`~repro.engine.provenance_index.ProvenanceIndex` is a pure
  acceleration layer — every view it serves (spines, proof DAGs,
  constants, depths, the active instance) is identical to the standalone
  :class:`~repro.engine.provenance.ProvenanceTracker` walks it replaces;
* the memoized serving path (subtree memoization, ``why()`` sentences,
  batch grouping) renders **byte-identical** text to an uncached run,
  while actually hitting its cache regions.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.apps import figures, generators
from repro.core import ExplanationService
from repro.core.cache import LRUCache
from repro.core.explain import Explainer
from repro.engine.provenance import ProvenanceTracker

SCENARIOS = {
    "figure8": figures.figure8_instance,
    "figure12_stress": figures.figure12_stress_instance,
    "figure12_control": figures.figure12_control_instance,
    "figure15": figures.figure15_instance,
    "close_links": lambda: generators.close_links_common_control(seed=0),
    "chain": lambda: generators.control_with_steps(7, seed=2),
    "cascade": lambda: generators.stress_with_steps(7, seed=2),
}


@pytest.fixture(params=sorted(SCENARIOS), name="scenario")
def scenario_fixture(request):
    return SCENARIOS[request.param]()


class TestIndexParity:
    """The index answers exactly what the unindexed walks answered."""

    def test_views_match_tracker_ground_truth(self, scenario):
        result = scenario.run()
        chase = result.chase_result
        tracker = ProvenanceTracker(chase)  # no index: the original walks
        index = result.index
        assert tracker.index is None
        for fact in result.derived():
            assert index.spine(fact) == tracker.spine(fact)
            assert list(index.proof_records(fact)) == tracker.proof_records(fact)
            assert index.proof_constants(fact) == tracker.proof_constants(fact)
            assert index.depth(fact) == tracker.depth(fact)
            assert index.proof_size(fact) == tracker.proof_size(fact)
            assert index.is_derived(fact)
            record = index.record(fact)
            assert record is chase.derivation[fact]
            assert index.intensional_parents(record) == \
                tracker._intensional_parents(record)

    def test_active_facts_match_superseded_filter(self, scenario):
        result = scenario.run()
        chase = result.chase_result
        expected = [
            fact for fact in chase.database.facts()
            if fact not in chase.superseded
        ]
        assert list(result.index.active_facts()) == expected

    def test_tracker_delegates_to_index(self, scenario):
        result = scenario.run()
        assert result.provenance.index is result.index
        target = scenario.target
        assert result.provenance.spine(target) is result.index.spine(target)

    def test_edb_facts_and_unknowns(self, scenario):
        result = scenario.run()
        index = result.index
        edb = next(iter(scenario.database.facts()))
        assert index.depth(edb) == 0
        assert not index.is_derived(edb)
        with pytest.raises(KeyError):
            index.record(edb)
        with pytest.raises(KeyError):
            index.spine(edb)

    def test_reverse_adjacency_and_buckets(self, scenario):
        result = scenario.run()
        index = result.index
        for record in result.chase_result.records:
            for parent in record.parents:
                assert record in index.children(parent)
            assert record in index.records_for_predicate(
                record.fact.predicate
            )
        snapshot = index.snapshot()
        assert snapshot["records"] == len(result.chase_result.records)
        assert snapshot["build_s"] >= 0


class TestServingParity:
    """Cached and uncached serving render byte-identical text."""

    def test_byte_identical_across_applications(self, scenario):
        result = scenario.run()
        compiled = scenario.application.compile()
        cached = Explainer(result, compiled=compiled)
        uncached = Explainer(result, compiled=compiled, cache=LRUCache(0))
        for query in result.derived():
            if query.predicate != scenario.target.predicate:
                continue
            baseline = uncached.explain(query)
            cold = cached.explain(query)
            warm = cached.explain(query)
            assert cold.text == baseline.text
            assert warm.text == baseline.text
            assert cold.to_dict() == baseline.to_dict()
            assert cold.paths_used() == baseline.paths_used()

    @staticmethod
    def _side_branch_result():
        """An independent shock on D joins the A->B->C cascade at C: its
        story is off the main spine, so explaining Default(C) recurses
        into side branches — the path the visited-set replay protects."""
        from repro.apps import stress_test
        from repro.datalog import fact
        from repro.engine import reason

        application = stress_test.build_simple()
        facts = [
            fact("Shock", "A", 9), fact("HasCapital", "A", 5),
            fact("Debts", "A", "B", 7), fact("HasCapital", "B", 2),
            fact("Debts", "B", "C", 4), fact("HasCapital", "C", 6),
            fact("Shock", "D", 9), fact("HasCapital", "D", 3),
            fact("Debts", "D", "C", 5),
        ]
        return application, reason(application.program, facts)

    def test_side_branch_subtrees_stay_byte_identical(self):
        from repro.datalog import fact

        application, result = self._side_branch_result()
        compiled = application.compile()
        cached = Explainer(result, compiled=compiled)
        uncached = Explainer(result, compiled=compiled, cache=LRUCache(0))
        # Warm the subtree cache bottom-up first: Default(D) is a side
        # branch of Default(C), so the second query is served from a
        # memoized subtree and must still replay the visited-set marks.
        for query in (fact("Default", "D"), fact("Default", "B"),
                      fact("Default", "C")):
            baseline = uncached.explain(query)
            assert cached.explain(query).text == baseline.text
            assert cached.explain(query).to_dict() == baseline.to_dict()
        explanation = cached.explain(fact("Default", "C"))
        assert explanation.side_explanations  # the D branch is narrated

    def test_option_variants_are_keyed_apart(self):
        from repro.datalog import fact

        application, result = self._side_branch_result()
        explainer = application.explainer(result)
        query = fact("Default", "C")
        full = explainer.explain(query)
        bare = explainer.explain(query, include_side_branches=False)
        assert full.side_explanations
        assert not bare.side_explanations
        assert full.text != bare.text
        assert explainer.explain(query).text == full.text


class TestMemoizedDrilldown:
    def test_why_is_memoized_and_stable(self):
        scenario = figures.figure8_instance()
        result = scenario.run()
        explainer = scenario.application.explainer(result)
        first = explainer.why(scenario.target)
        second = explainer.why(scenario.target)
        assert first == second
        region = explainer._why_region
        assert region.stats.misses == 1
        assert region.stats.hits == 1

    def test_why_raises_for_edb_facts(self):
        scenario = figures.figure8_instance()
        result = scenario.run()
        explainer = scenario.application.explainer(result)
        with pytest.raises(KeyError):
            explainer.why(next(iter(scenario.database.facts())))

    def test_proof_constants_served_from_index(self):
        scenario = figures.figure12_stress_instance()
        result = scenario.run()
        explainer = scenario.application.explainer(result)
        tracker = ProvenanceTracker(result.chase_result)
        constants = explainer.proof_constants(scenario.target)
        assert constants == tracker.proof_constants(scenario.target)
        # Memoized on the index: the same tuple object is returned.
        assert explainer.proof_constants(scenario.target) is constants

    def test_serving_counters_emitted(self):
        scenario = figures.figure8_instance()
        metrics = obs.ServiceMetrics()
        with obs.observed(metrics=metrics):
            result = scenario.run()
            explainer = scenario.application.explainer(result)
            explainer.explain(scenario.target)
            explainer.explain(scenario.target)
        assert metrics.counter_value("explain.index_build") == 1
        assert metrics.counter_value("explain.index_hit") >= 1
        assert metrics.counter_value("explain.index_miss") >= 1


class TestServiceServing:
    def test_batch_grouping_preserves_order_and_text(self):
        scenario = generators.stress_with_steps(8, seed=1, debts_per_hop=2)
        with ExplanationService() as service:
            session = service.session(
                scenario.application, scenario.database
            )
            queries = [
                query for query in session.answers()
                if session.result.chase_result.is_derived(query)
            ]
            assert len(queries) > 1
            first, rest = session._subtree_waves(queries)
            assert sorted(first + rest) == list(range(len(queries)))
            batched = session.explain_batch(queries)
            solo = [session.explainer.explain(query) for query in queries]
            assert [e.text for e in batched] == [e.text for e in solo]

    def test_batch_matches_unbatched_uncached(self):
        scenario = generators.stress_with_steps(6, seed=4, debts_per_hop=2)
        result = scenario.run()
        compiled = scenario.application.compile()
        uncached = Explainer(result, compiled=compiled, cache=LRUCache(0))
        with ExplanationService() as service:
            session = service.bind(scenario.application, result)
            queries = [
                query for query in session.answers()
                if result.chase_result.is_derived(query)
            ]
            batched = session.explain_batch(queries)
        for query, explanation in zip(queries, batched):
            assert explanation.text == uncached.explain(query).text

    def test_re_reason_invalidates_served_entries(self):
        application = figures.figure8_instance().application
        from repro.apps import stress_test

        with ExplanationService() as service:
            scenario = figures.figure8_instance()
            session = service.session(application, scenario.database)
            before = session.explain(scenario.target).text
            old_scope = session.explainer.memo_scope
            # Bigger B->C loans: the same Default(C) story now aggregates
            # different amounts — served text must change with the data.
            session.re_reason([
                stress_test.shock("A", 6),
                stress_test.has_capital("A", 5),
                stress_test.has_capital("B", 2),
                stress_test.has_capital("C", 10),
                stress_test.debt("A", "B", 7),
                stress_test.debt("B", "C", 5),
                stress_test.debt("B", "C", 9),
            ])
            assert session.explainer.memo_scope != old_scope
            after = session.explain(scenario.target).text
            assert before != after
            assert "14" in after  # the new 5 + 9 aggregate
            assert service.metrics.counter_value("re_reasons") == 1

    def test_why_not_memoized_per_session(self):
        application = figures.figure8_instance().application
        from repro.apps import stress_test
        from repro.datalog import fact

        with ExplanationService() as service:
            session = service.session(application, [
                stress_test.shock("A", 9),
                stress_test.has_capital("A", 5),
                stress_test.has_capital("B", 9),
                stress_test.debt("A", "B", 4),
            ])
            query = fact("Default", "B")
            first = session.why_not(query)
            second = session.why_not(query)
            assert first is second  # served from the whynot region
            assert session._whynot_region.stats.hits == 1
            snapshot = service.metrics_snapshot()
            regions = snapshot["explanation_cache"]["regions"]
            assert regions["whynot"]["hits"] == 1
