"""Tests for the repro-explain command-line interface."""

import pytest

from repro.cli import main


class TestAnalyse:
    def test_company_control_analysis(self, capsys):
        assert main(["--analyse", "company_control"]) == 0
        output = capsys.readouterr().out
        assert "simple reasoning paths" in output
        assert "σ3" in output

    def test_analysis_dot_output(self, capsys):
        assert main(["--analyse", "stress_test", "--dot"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")

    def test_unknown_application_rejected(self):
        with pytest.raises(SystemExit):
            main(["--analyse", "nonexistent"])


class TestDemos:
    def test_figure8_demo(self, capsys):
        assert main(["--demo", "figure8"]) == 0
        output = capsys.readouterr().out
        assert "Q_e = {Default(C)}" in output
        assert "Reasoning paths used:" in output

    def test_deterministic_flag(self, capsys):
        assert main(["--demo", "figure8", "--deterministic"]) == 0
        output = capsys.readouterr().out
        assert "Since " in output

    def test_chain_demo_with_steps(self, capsys):
        assert main(["--demo", "chain", "--steps", "3", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "control chain of 3" in output

    def test_cascade_demo(self, capsys):
        assert main(["--demo", "cascade", "--steps", "5"]) == 0
        output = capsys.readouterr().out
        assert "Q_e" in output

    def test_demo_dot_output(self, capsys):
        assert main(["--demo", "figure8", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestHelp:
    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 1
        assert "repro-explain" in capsys.readouterr().out
