"""Tests for the repro-explain command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import STATS_DOCUMENT_KEYS, parse_trace_jsonl, span_tree


class TestAnalyse:
    def test_company_control_analysis(self, capsys):
        assert main(["--analyse", "company_control"]) == 0
        output = capsys.readouterr().out
        assert "simple reasoning paths" in output
        assert "σ3" in output

    def test_analysis_dot_output(self, capsys):
        assert main(["--analyse", "stress_test", "--dot"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")

    def test_unknown_application_rejected(self):
        with pytest.raises(SystemExit):
            main(["--analyse", "nonexistent"])


class TestDemos:
    def test_figure8_demo(self, capsys):
        assert main(["--demo", "figure8"]) == 0
        output = capsys.readouterr().out
        assert "Q_e = {Default(C)}" in output
        assert "Reasoning paths used:" in output

    def test_deterministic_flag(self, capsys):
        assert main(["--demo", "figure8", "--deterministic"]) == 0
        output = capsys.readouterr().out
        assert "Since " in output

    def test_chain_demo_with_steps(self, capsys):
        assert main(["--demo", "chain", "--steps", "3", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        assert "control chain of 3" in output

    def test_cascade_demo(self, capsys):
        assert main(["--demo", "cascade", "--steps", "5"]) == 0
        output = capsys.readouterr().out
        assert "Q_e" in output

    def test_demo_dot_output(self, capsys):
        assert main(["--demo", "figure8", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestHelp:
    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 1
        assert "repro-explain" in capsys.readouterr().out


class TestObservability:
    def test_explain_subcommand_trace_and_stats(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        stats_path = tmp_path / "stats.json"
        assert main([
            "explain", "--app", "company_control",
            "--trace", str(trace_path), "--stats", str(stats_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "Q_e" in output

        spans = parse_trace_jsonl(trace_path.read_text(encoding="utf-8"))
        names = {span["name"] for span in spans}
        assert any(name.startswith("chase.") for name in names)
        assert any(name.startswith("compile.") for name in names)
        by_name = {span["name"]: span for span in spans}
        # chase.stratum nests under chase.run; the chase nests under the
        # service.chase timer span.
        assert (by_name["chase.stratum"]["parent"]
                == by_name["chase.run"]["id"])
        assert (by_name["chase.run"]["parent"]
                == by_name["service.chase"]["id"])
        assert span_tree(spans)  # reconstructs without orphan errors

        document = json.loads(stats_path.read_text(encoding="utf-8"))
        for key in STATS_DOCUMENT_KEYS:
            assert key in document
        assert document["chase"]["rule_firings"]
        assert sum(document["chase"]["rule_firings"].values()) > 0
        assert "hit_rate" in document["caches"]["explanation_cache"]
        assert "p50" in document["histograms"]["explain_batch"]
        assert document["counters"]["chase.runs"] == 1

    def test_explain_subcommand_without_obs_flags(self, capsys):
        assert main(["explain", "--app", "figure8",
                     "--deterministic"]) == 0
        assert "Q_e = {Default(C)}" in capsys.readouterr().out

    def test_stats_subcommand_json(self, capsys):
        assert main(["stats", "--app", "company_control"]) == 0
        document = json.loads(capsys.readouterr().out)
        for key in STATS_DOCUMENT_KEYS:
            assert key in document
        assert document["spans"]  # stats forces tracing on
        assert document["chase"]["rounds"] >= 1

    def test_stats_subcommand_prometheus(self, capsys):
        assert main(["stats", "--app", "figure8",
                     "--format", "prometheus"]) == 0
        text = capsys.readouterr().out
        assert "repro_chase_runs 1" in text
        assert "# TYPE" in text
        assert 'quantile="0.95"' in text

    def test_stats_subcommand_output_file(self, tmp_path):
        output = tmp_path / "doc.json"
        assert main(["stats", "--app", "figure8",
                     "--output", str(output)]) == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["format"] == "repro-stats/1"

    def test_legacy_flags_accept_obs_arguments(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        stats_path = tmp_path / "stats.json"
        assert main([
            "--demo", "figure8",
            "--trace", str(trace_path), "--stats", str(stats_path),
        ]) == 0
        spans = parse_trace_jsonl(trace_path.read_text(encoding="utf-8"))
        assert {span["name"] for span in spans} >= {
            "chase.run", "service.explain",
        }
        document = json.loads(stats_path.read_text(encoding="utf-8"))
        assert document["counters"]["explanations"] == 1

    def test_instrumented_output_matches_uninstrumented(self, capsys, tmp_path):
        """Tracing must not change what the pipeline produces."""
        assert main(["explain", "--app", "company_control", "--query-all"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "explain", "--app", "company_control", "--query-all",
            "--trace", str(tmp_path / "t.jsonl"),
            "--stats", str(tmp_path / "s.json"),
        ]) == 0
        traced = capsys.readouterr().out
        assert traced == plain


class TestResilienceFlags:
    def test_fault_injected_demo_reports_fallbacks(self, capsys):
        # Three transient faults exhaust the first template's retry
        # budget; the run still exits 0 and the degradation is visible in
        # the metrics dump (the fault-injected CI smoke relies on this).
        assert main([
            "--demo", "figure8", "--deterministic",
            "--inject-faults", "transient:3", "--metrics",
        ]) == 0
        captured = capsys.readouterr()
        snapshot = json.loads(captured.err)
        assert snapshot["counters"]["enhance.fallback_total"] >= 1
        assert snapshot["counters"]["llm.retry_exhausted"] >= 1

    def test_fault_injected_demo_output_is_complete(self, capsys):
        # Degraded, not broken: the explanation text is still printed.
        assert main([
            "--demo", "figure8", "--deterministic",
            "--inject-faults", "transient:3",
        ]) == 0
        assert "Q_e" in capsys.readouterr().out

    def test_malformed_fault_spec_exits_2(self, capsys):
        assert main([
            "--demo", "figure8", "--inject-faults", "bogus:1",
        ]) == 2
        assert "invalid --inject-faults" in capsys.readouterr().err

    def test_malformed_fault_spec_exits_2_on_subcommand(self, capsys):
        assert main([
            "explain", "--app", "figure8", "--inject-faults", "rate:2.0",
        ]) == 2
        assert "invalid --inject-faults" in capsys.readouterr().err

    def test_fault_injection_on_explain_subcommand(self, capsys):
        assert main([
            "explain", "--app", "company_control",
            "--inject-faults", "transient:3", "--metrics",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().err)
        assert snapshot["counters"]["enhance.fallback_total"] >= 1


class TestStrategyFlag:
    def test_semi_naive_on_explain_subcommand(self, capsys):
        assert main([
            "explain", "--app", "company_control",
            "--strategy", "semi-naive",
        ]) == 0
        assert "Q_e" in capsys.readouterr().out

    def test_semi_naive_on_legacy_demo(self, capsys):
        assert main([
            "--demo", "figure8", "--deterministic",
            "--strategy", "semi-naive",
        ]) == 0
        assert "Q_e" in capsys.readouterr().out

    def test_strategies_agree_on_output(self, capsys):
        assert main(["explain", "--app", "company_control",
                     "--query-all"]) == 0
        naive = capsys.readouterr().out
        for strategy in ("semi-naive", "planned"):
            assert main(["explain", "--app", "company_control",
                         "--query-all", "--strategy", strategy]) == 0
            assert capsys.readouterr().out == naive

    def test_planned_on_explain_subcommand(self, capsys):
        assert main([
            "explain", "--app", "company_control",
            "--strategy", "planned",
        ]) == 0
        assert "Q_e" in capsys.readouterr().out

    def test_planned_on_legacy_demo(self, capsys):
        assert main([
            "--demo", "figure8", "--deterministic",
            "--strategy", "planned",
        ]) == 0
        assert "Q_e" in capsys.readouterr().out

    def test_planned_metrics_expose_planner_counters(self, capsys):
        assert main([
            "explain", "--app", "company_control",
            "--strategy", "planned", "--metrics",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().err)
        assert snapshot["counters"]["chase.plan_compiled"] >= 1
        assert snapshot["counters"]["chase.plan_matches"] >= 1

    def test_planned_metrics_expose_kernel_telemetry(self, capsys):
        assert main([
            "explain", "--app", "company_control",
            "--strategy", "planned", "--metrics",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().err)
        assert snapshot["counters"]["chase.kernels_compiled"] >= 1
        assert snapshot["counters"]["chase.kernel_execs"] >= 1
        assert snapshot["latency"]["chase.kernel_compile_s"]["count"] >= 1
        assert snapshot["gauges"]["chase.symbols"] >= 1

    def test_planned_stats_document_has_plans(self, capsys, tmp_path):
        stats_file = tmp_path / "stats.json"
        assert main([
            "stats", "--app", "company_control",
            "--strategy", "planned", "--stats", str(stats_file),
        ]) == 0
        document = json.loads(stats_file.read_text())
        chase_section = document["chase"]
        assert chase_section["plans_compiled"] >= 1
        assert chase_section["plans"]

    def test_planned_stats_document_has_kernel_telemetry(self, capsys, tmp_path):
        stats_file = tmp_path / "stats.json"
        assert main([
            "stats", "--app", "company_control",
            "--strategy", "planned", "--stats", str(stats_file),
        ]) == 0
        chase_section = json.loads(stats_file.read_text())["chase"]
        assert chase_section["kernels_compiled"] >= 1
        assert chase_section["kernel_compile_s"] > 0
        assert chase_section["symbols"] >= 1
        assert all(
            entry["kernel_execs"] >= 1
            for entry in chase_section["plans"].values()
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["explain", "--app", "figure8", "--strategy", "magic"])
