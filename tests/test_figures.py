"""Tests replaying the paper's worked instances end to end."""

from repro.apps import figures
from repro.core import Explainer, completeness_ratio
from repro.datalog.atoms import fact


class TestFigure8:
    def test_expected_steps(self, figure8):
        scenario, result = figure8
        assert result.proof_size(scenario.target) == scenario.expected_steps == 5

    def test_chase_graph_shape(self, figure8):
        """The Figure 8 fragment: 7 EDB facts + 5 derived facts."""
        __, result = figure8
        assert len(result.database) == 12


class TestFigure12:
    def test_stress_narrative_reproduced(self, figure12_stress):
        """Section 5's Default(F) narrative: every amount it cites must
        appear in our generated explanation."""
        scenario, result = figure12_stress
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        for constant in ("14", "5", "7", "4", "9", "8", "2", "10"):
            assert constant in explanation.constants()
        assert completeness_ratio(
            explanation.text, explainer.proof_constants(scenario.target)
        ) == 1.0

    def test_stress_paths_match_narrative(self, figure12_stress):
        """The paper reports reasoning paths {Π7, Γ3, Γ4}: a single-channel
        simple path, a short-term cycle, and the joint dual-channel cycle."""
        scenario, result = figure12_stress
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target)
        used = [
            frozenset(segment.path.labels) for segment in explanation.segments
        ]
        assert used == [
            frozenset({"sigma4", "sigma5", "sigma7"}),
            frozenset({"sigma6", "sigma7"}),
            frozenset({"sigma5", "sigma6", "sigma7"}),
        ]

    def test_control_side_uses_pi_sigma1_sigma3(self):
        """The paper: Q_e = {Control(B, D)} follows the {σ1, σ3} path."""
        scenario = figures.figure12_control_instance()
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target)
        assert [frozenset(s.path.labels) for s in explanation.segments] == [
            frozenset({"sigma1", "sigma3"}),
        ]


class TestFigure15:
    def test_irish_bank_controls_madrid_credit(self, figure15):
        __, result = figure15
        assert fact("Control", "IrishBank", "MadridCredit") in result.answers()

    def test_combined_stake_is_57_percent(self, figure15):
        scenario, result = figure15
        record = result.chase_result.record_for(scenario.target)
        assert record.aggregate_value == 0.57

    def test_explanation_mentions_all_shares(self, figure15):
        scenario, result = figure15
        explainer = Explainer(result, scenario.application.glossary)
        text = explainer.explain(scenario.target, prefer_enhanced=False).text
        for constant in ("0.83", "0.54", "0.36", "0.21", "0.57"):
            assert constant in text

    def test_deterministic_explanation_mirrors_figure15_top(self, figure15):
        """The 'Deterministic Explanation' block of Figure 15 lists the two
        direct controls and the joint 57% aggregation."""
        scenario, result = figure15
        explainer = Explainer(result, scenario.application.glossary)
        text = explainer.deterministic_explanation(scenario.target)
        assert "IrishBank owns 0.83 shares of FondoItaliano" in text
        assert "IrishBank owns 0.54 shares of FrenchPLC" in text
        assert "sum of" in text

    def test_all_instances_run(self):
        for scenario in figures.all_paper_instances():
            result = scenario.run()
            assert scenario.target in result.database
            if scenario.expected_steps is not None:
                assert result.proof_size(scenario.target) == scenario.expected_steps
