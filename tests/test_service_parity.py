"""Golden-text parity: the compile/runtime/service layering must be
byte-identical to the seed one-object Explainer for every application.

For each app in ``repro.apps`` a representative workload is explained
three ways — the historical ``Explainer(result, glossary, llm=...)``
construction, an ``ExplanationService`` session, and an explainer bound
to a serialize→load round-tripped ``CompiledProgram`` — and every
deterministic and enhanced text (plus violation reports where the app
has constraints) must match exactly.
"""

import pytest

from repro.apps import (
    close_links,
    company_control,
    figures,
    golden_powers,
    integrated_ownership,
    stress_test,
)
from repro.core import CompiledProgram, Explainer, ExplanationService
from repro.llm import SimulatedLLM

_SEED = 7


def _workloads():
    """(app, database facts) per application — small but representative:
    recursion, aggregation, negation and constraints all appear."""
    yield (
        company_control.build(),
        figures.figure15_instance().database,
    )
    yield (
        stress_test.build(),
        figures.figure12_stress_instance().database,
    )
    yield (
        stress_test.build_simple(),
        figures.figure8_instance().database,
    )
    yield (
        close_links.build(),
        [
            close_links.own("H", "A", 0.7),
            close_links.own("H", "B", 0.8),
            close_links.own("A", "C", 0.25),
        ],
    )
    yield (
        golden_powers.build(),
        [
            golden_powers.own("F1", "S1", 0.6),
            golden_powers.own("F2", "S1", 0.7),
            golden_powers.foreign("F1"),
            golden_powers.foreign("F2"),
            golden_powers.strategic("S1"),
            golden_powers.exempt("F2"),
            golden_powers.vetoed("F1"),
        ],
    )
    yield (
        integrated_ownership.build(),
        [
            integrated_ownership.own("A", "B", 0.5),
            integrated_ownership.own("B", "C", 0.5),
            integrated_ownership.own("A", "C", 0.2),
        ],
    )


def _texts(explainer, result, prefer_enhanced):
    """Every goal fact's explanation plus every violation report."""
    texts = [
        explainer.explain(query, prefer_enhanced=prefer_enhanced).text
        for query in result.answers()
        if result.chase_result.is_derived(query)
    ]
    texts.extend(
        explainer.explain_violation(
            violation, prefer_enhanced=prefer_enhanced
        )
        for violation in result.violations
    )
    return texts


@pytest.mark.parametrize(
    "application,database",
    list(_workloads()),
    ids=lambda value: getattr(value, "name", ""),
)
@pytest.mark.parametrize("prefer_enhanced", [False, True])
def test_layered_outputs_match_seed_explainer(
    application, database, prefer_enhanced
):
    result = application.reason(database)

    # Seed path: one object compiling on the fly, fresh LLM.
    seed = Explainer(
        result, application.glossary,
        llm=SimulatedLLM(seed=_SEED, faithful=True),
    )
    expected = _texts(seed, result, prefer_enhanced)
    assert expected, f"workload for {application.name} derives nothing"

    # Service path: compile cache + shared LRU + session binding.
    with ExplanationService(
        llm=SimulatedLLM(seed=_SEED, faithful=True)
    ) as service:
        session = service.bind(application, result)
        assert _texts(session.explainer, result, prefer_enhanced) == expected

        # Round-trip path: serialize → load → bind.
        payload = session.compiled.export_payload()
        restored = CompiledProgram.from_payload(
            payload, application.program, application.glossary
        )
        rebound = Explainer(result, compiled=restored)
        assert _texts(rebound, result, prefer_enhanced) == expected


def test_batch_matches_seed_explainer():
    """explain_batch (thread pool) returns the same bytes as the seed
    sequential path, in order."""
    application = company_control.build()
    database = figures.figure15_instance().database
    result = application.reason(database)
    seed = Explainer(
        result, application.glossary,
        llm=SimulatedLLM(seed=_SEED, faithful=True),
    )
    queries = [
        query for query in result.answers()
        if result.chase_result.is_derived(query)
    ]
    expected = [seed.explain(query).text for query in queries]
    with ExplanationService(
        llm=SimulatedLLM(seed=_SEED, faithful=True), max_workers=4
    ) as service:
        session = service.bind(application, result)
        produced = [e.text for e in session.explain_batch(queries)]
    assert produced == expected
