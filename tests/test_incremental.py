"""Tests for incremental chase maintenance (repro.engine.incremental).

The contract under test is *byte parity*: after any add/retract
schedule, the incrementally maintained result — facts, records,
supersessions, rounds, violations — and everything served off it
(explanations, why-not answers, the provenance index) must be identical
to a fresh session built from scratch on the post-delta database.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.apps import (
    company_control,
    generators,
    golden_powers,
    integrated_ownership,
)
from repro.apps.company_control import company, control, own
from repro.core.service import ExplanationService
from repro.datalog import Fact, Variable, fact, parse_program
from repro.engine.chase import ChaseEngine
from repro.engine.database import Database
from repro.engine.incremental import (
    IncrementalFallback,
    extensional_facts,
    incremental_update,
    resolve_delta,
)
def _assert_identical(incremental, fresh):
    assert tuple(incremental.database.facts()) == tuple(
        fresh.database.facts()
    )
    assert incremental.records == fresh.records
    for mine, theirs in zip(incremental.records, fresh.records):
        # Dataclass equality compares binding dicts order-insensitively;
        # the explanation surfaces iterate them, so pin the order too.
        assert list(mine.binding.items()) == list(theirs.binding.items())
    assert incremental.superseded == fresh.superseded
    assert incremental.rounds == fresh.rounds
    assert incremental.stats.rounds_per_stratum == (
        fresh.stats.rounds_per_stratum
    )
    assert [
        (violation.constraint.label, violation.witnesses)
        for violation in incremental.violations
    ] == [
        (violation.constraint.label, violation.witnesses)
        for violation in fresh.violations
    ]


# ----------------------------------------------------------------------
# Delta normalization
# ----------------------------------------------------------------------

class TestResolveDelta:
    @pytest.fixture(scope="class")
    def base(self, control_app):
        database = Database([
            company("A"), company("B"), own("A", "B", 0.8),
        ])
        return ChaseEngine(strategy="planned").run(
            control_app.program, database
        )

    def test_extensional_facts_excludes_derived(self, base):
        edb = extensional_facts(base)
        assert set(edb) == {company("A"), company("B"), own("A", "B", 0.8)}
        assert control("A", "B") not in edb

    def test_retracting_derived_fact_is_an_error(self, base):
        with pytest.raises(ValueError, match="cannot retract derived fact"):
            resolve_delta(base, [], [control("A", "B")])

    def test_adding_non_ground_fact_is_an_error(self, base):
        open_atom = Fact("Control", (Variable("x"), Variable("x")))
        with pytest.raises(ValueError, match="ground"):
            resolve_delta(base, [open_atom], [])

    def test_redundant_delta_is_dropped(self, base):
        new_edb, added, retracted = resolve_delta(
            base, [company("A")], [company("Ghost")]
        )
        assert added == () and retracted == ()
        assert new_edb == extensional_facts(base)

    def test_retained_facts_keep_order_adds_append(self, base):
        new_edb, added, retracted = resolve_delta(
            base, [company("C")], [company("A")]
        )
        assert added == (company("C"),)
        assert retracted == (company("A"),)
        assert new_edb == (
            company("B"), own("A", "B", 0.8), company("C")
        )


# ----------------------------------------------------------------------
# Engine-level update outcomes
# ----------------------------------------------------------------------

class TestEngineUpdate:
    def test_noop_delta_returns_previous_result(self, control_app):
        engine = ChaseEngine(strategy="planned")
        base = engine.run(
            control_app.program,
            Database([company("A"), company("B"), own("A", "B", 0.8)]),
        )
        outcome = engine.update(
            control_app.program, base, adds=[company("A")]
        )
        assert outcome.mode == "noop"
        assert outcome.result is base

    def test_single_add_matches_fresh_chase(self, control_app):
        engine = ChaseEngine(strategy="planned")
        base = engine.run(
            control_app.program,
            generators.random_ownership_database(
                entities=12, edges=30, seed=3
            ),
        )
        edge = own("Invest0", "Gruppo1", 0.7)
        outcome = engine.update(control_app.program, base, adds=[edge])
        assert outcome.mode == "incremental"
        assert outcome.added == (edge,)
        assert outcome.replayed > 0
        fresh = ChaseEngine(strategy="naive").run(
            control_app.program,
            Database(extensional_facts(outcome.result)),
        )
        _assert_identical(outcome.result, fresh)

    def test_retraction_rederives_alternative_support(self, control_app):
        # B is controlled via two independent majority edges; dropping
        # one must keep Control(A, B) alive through the other (the DRed
        # rederivation step).
        engine = ChaseEngine(strategy="planned")
        base = engine.run(
            control_app.program,
            Database([
                company("A"), company("B"), company("C"),
                own("A", "B", 0.6),
                own("A", "C", 0.6), own("C", "B", 0.6),
            ]),
        )
        assert control("A", "B") in base.database
        outcome = engine.update(
            control_app.program, base, retracts=[own("A", "B", 0.6)]
        )
        assert outcome.mode == "incremental"
        assert control("A", "B") in outcome.result.database
        fresh = ChaseEngine(strategy="naive").run(
            control_app.program,
            Database(extensional_facts(outcome.result)),
        )
        _assert_identical(outcome.result, fresh)

    def test_existential_program_falls_back(self):
        # z is unbound in the body: an existential rule, outside the
        # replayable fragment.
        program = parse_program(
            "e: Person(x) -> Guardian(x, z).",
            name="existential", goal="Guardian",
        )
        engine = ChaseEngine(strategy="naive")
        base = engine.run(program, Database([fact("Person", "Ann")]))
        with pytest.raises(IncrementalFallback):
            incremental_update(program, base, [fact("Person", "Bo")], [])
        outcome = engine.update(program, base, adds=[fact("Person", "Bo")])
        assert outcome.mode == "full"
        assert outcome.result.database.facts("Guardian")

    def test_update_metrics_and_counters(self, control_app):
        metrics = obs.MetricsRegistry()
        with obs.observed(metrics=metrics):
            engine = ChaseEngine(strategy="planned")
            base = engine.run(
                control_app.program,
                generators.random_ownership_database(
                    entities=10, edges=24, seed=5
                ),
            )
            edge = own("Invest0", "Gruppo1", 0.7)
            engine.update(control_app.program, base, adds=[edge])
        assert metrics.counter_value("incremental.updates") == 1
        assert metrics.counter_value("chase.delta_adds") == 1
        assert metrics.counter_value("chase.delta_records_replayed") > 0


# ----------------------------------------------------------------------
# Randomized schedules across every bundled application
# ----------------------------------------------------------------------

def _golden_powers_workload():
    database = generators.random_ownership_database(
        entities=14, edges=40, seed=13
    )
    names = [
        fact.terms[0].value for fact in database.facts()
        if fact.predicate == "Company"
    ]
    facts = list(database.facts())
    facts += [golden_powers.foreign(name) for name in names[::3]]
    facts += [golden_powers.strategic(name) for name in names[1::3]]
    facts += [golden_powers.exempt(name) for name in names[::5]]
    facts += [golden_powers.vetoed(name) for name in names[::7]]
    return golden_powers.build(), tuple(facts)


def _battery_workloads():
    workloads = [
        (
            "company_control",
            company_control.build(),
            generators.random_ownership_database(
                entities=20, edges=60, seed=11
            ).facts(),
        ),
        (
            "integrated_ownership",
            integrated_ownership.build(),
            generators.random_ownership_database(
                entities=10, edges=26, seed=7
            ).facts(),
        ),
    ]
    scenario = generators.close_links_common_control(seed=3)
    workloads.append(
        ("close_links", scenario.application, scenario.database.facts())
    )
    cascade = generators.stress_cascade(
        hops=5, seed=5, dual_final=True, debts_per_hop=2
    )
    workloads.append(
        ("stress_test", cascade.application, cascade.database.facts())
    )
    workloads.append(("golden_powers", *_golden_powers_workload()))
    return workloads


@pytest.mark.parametrize(
    "name,application,edb",
    _battery_workloads(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_randomized_schedule_matches_fresh_chase(name, application, edb):
    """Every bundled app: a randomized add/retract schedule where each
    step's incremental result equals a from-scratch chase."""
    rng = random.Random(1)
    engine = ChaseEngine(strategy="planned")
    reference = ChaseEngine(strategy="naive")
    program = application.program
    current = engine.run(program, Database(edb))
    removed: list = []
    for _step in range(8):
        live = list(extensional_facts(current))
        adds, retracts = [], []
        roll = rng.random()
        if roll < 0.45 and live:
            retracts = rng.sample(live, k=min(len(live), rng.randint(1, 3)))
        elif roll < 0.8 and removed:
            adds = rng.sample(removed, k=min(len(removed), rng.randint(1, 3)))
        else:
            if live:
                retracts = rng.sample(live, k=1)
            if removed:
                adds = rng.sample(removed, k=1)
        outcome = engine.update(program, current, adds, retracts)
        current = outcome.result
        removed = [
            fact for fact in removed + retracts if fact not in set(adds)
        ]
        fresh = reference.run(
            program, Database(extensional_facts(current))
        )
        _assert_identical(current, fresh)


# ----------------------------------------------------------------------
# Session-level parity: explanations, why-not, provenance index
# ----------------------------------------------------------------------

class TestSessionUpdate:
    @pytest.fixture()
    def service(self):
        with ExplanationService(llm=None) as service:
            yield service

    def test_explanations_match_fresh_session(self, control_app, service):
        database = generators.random_ownership_database(
            entities=16, edges=48, seed=9
        )
        session = service.session(control_app, database, strategy="planned")
        session.result.index
        rng = random.Random(2)
        removed: list = []
        for _step in range(4):
            live = list(extensional_facts(session.result.chase_result))
            retracts = rng.sample(live, k=2)
            adds = rng.sample(removed, k=1) if removed else []
            outcome = session.update(adds=adds, retracts=retracts)
            assert outcome.mode == "incremental"
            removed = [
                fact for fact in removed + retracts
                if fact not in set(adds)
            ]
            fresh = service.session(
                control_app,
                list(extensional_facts(session.result.chase_result)),
                strategy="naive",
            )
            assert session.answers() == fresh.answers()
            for query in session.answers()[:6]:
                maintained = session.explain(query)
                rebuilt = fresh.explain(query)
                assert maintained.text == rebuilt.text
                assert maintained.to_dict() == rebuilt.to_dict()

    def test_whynot_after_retraction_under_negation(self, service):
        application, edb = _golden_powers_workload()
        session = service.session(application, edb, strategy="planned")
        exempt = next(
            fact for fact in extensional_facts(session.result.chase_result)
            if fact.predicate == "Exempt"
        )
        investor = exempt.terms[0].value
        # Retracting the exemption can only create alerts (negation);
        # whichever side each probe lands on, the maintained session's
        # why-not answers must match a fresh session's byte for byte.
        outcome = session.update(retracts=[exempt])
        assert outcome.mode == "incremental"
        fresh = service.session(
            application,
            list(extensional_facts(session.result.chase_result)),
            strategy="naive",
        )
        assert session.answers() == fresh.answers()
        strategic = [
            fact.terms[0].value
            for fact in session.result.database.facts()
            if fact.predicate == "Strategic"
        ]
        probes = [
            golden_powers.alert(investor, asset) for asset in strategic[:3]
        ]
        probes.append(golden_powers.alert(investor, "Absentia"))
        for probe in probes:
            if probe in set(session.answers()):
                continue
            assert session.why_not(probe).text == fresh.why_not(probe).text

    def test_add_retract_facts_shorthand(self, control_app, service):
        session = service.session(
            control_app,
            [company("A"), company("B")],
            strategy="planned",
        )
        edge = own("A", "B", 0.9)
        assert session.add_facts([edge]).mode == "incremental"
        assert control("A", "B") in session.result.database
        assert session.retract_facts([edge]).mode == "incremental"
        assert control("A", "B") not in session.result.database
        assert service.metrics.counter_value("updates") == 2

    def test_index_is_rebound_not_rebuilt(self, control_app, service):
        database = generators.random_ownership_database(
            entities=14, edges=36, seed=4
        )
        session = service.session(control_app, database, strategy="planned")
        index = session.result.index
        for query in session.answers()[:8]:
            index.spine(query)
        memoized = index.snapshot()["spines_memoized"]
        assert memoized > 0
        edge = own("Invest0", "Gruppo1", 0.7)
        session.update(adds=[edge])
        assert session.result.index is index  # same object, rebound
        retained = index.snapshot()["spines_memoized"]
        assert retained <= memoized
        # Retained spines must still be *correct*: identical to a fresh
        # session's extraction on the post-update database.
        fresh = service.session(
            control_app,
            list(extensional_facts(session.result.chase_result)),
            strategy="planned",
        )
        for query in session.answers():
            assert index.spine(query) == fresh.result.index.spine(query)

    def test_re_reason_routes_through_delta_path(self, control_app, service):
        session = service.session(
            control_app,
            [company("A"), company("B"), own("A", "B", 0.8)],
            strategy="planned",
        )
        # Delta-shaped change: retained prefix + appended new fact.
        session.re_reason([
            company("A"), company("B"), own("A", "B", 0.8),
            own("B", "A", 0.6),
        ])
        assert control("B", "A") in session.result.database
        assert service.metrics.counter_value("re_reason_incremental") == 1
        assert service.metrics.counter_value("updates_incremental") == 1
        # Reordered EDB is not delta-shaped: full re-chase fallback.
        session.re_reason([
            own("A", "B", 0.8), company("B"), company("A"),
        ])
        assert service.metrics.counter_value("re_reason_full") == 1
        assert service.metrics.counter_value("re_reasons") == 2


# ----------------------------------------------------------------------
# Profiler attribution
# ----------------------------------------------------------------------

def test_delta_kernels_get_their_own_profile_rows(control_app):
    profiler = obs.KernelProfiler(enabled=True)
    with obs.observed(profile=profiler):
        engine = ChaseEngine(strategy="planned")
        base = engine.run(
            control_app.program,
            generators.random_ownership_database(
                entities=12, edges=30, seed=3
            ),
        )
        engine.update(
            control_app.program, base,
            adds=[own("Invest0", "Gruppo1", 0.7)],
        )
    snapshot = profiler.snapshot()
    delta_rows = [label for label in snapshot if label.endswith("+delta")]
    assert delta_rows, f"no +delta rows in {list(snapshot)}"
    base_rule = delta_rows[0][: -len("+delta")]
    assert base_rule in snapshot  # full-run rows stay separately labeled
    rendered = obs.render_top(snapshot, limit=20, key="wall_s")
    assert any("+delta" in line for line in rendered.splitlines())
