"""Tests for the stats-diff regression tool and its gate configuration.

The gate suite in ``benchmarks/gates.json`` is the single CI perf gate:
these tests assert it reproduces the historical inline gates (planned
>= 2x naive, warm-start >= 2x, explain serving >= 5x + parity) and that
an injected synthetic regression fails the corresponding suite.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.diff import (
    StatsDiffError,
    check_gates,
    diff_documents,
    load_document,
    load_gates,
    numeric_leaves,
    render_report,
    resolve_path,
)

GATES_PATH = Path(__file__).parent.parent / "benchmarks" / "gates.json"

#: Payloads shaped exactly like the three BENCH_*.json documents, with
#: values that satisfy every historical CI gate.
ENGINE_PAYLOAD = {
    "quick": True,
    "transitive_closure": [
        {"nodes": 30, "edges": 70, "planned_speedup_vs_naive": 3.1,
         "seconds": {"naive": 0.03, "semi-naive": 0.02, "planned": 0.01}},
        {"nodes": 50, "edges": 120, "planned_speedup_vs_naive": 4.2,
         "seconds": {"naive": 0.08, "semi-naive": 0.05, "planned": 0.02}},
    ],
    "workloads": {
        "ownership_network": {"planned_speedup_vs_seminaive": 1.4},
        "control_chain": {"planned_speedup_vs_seminaive": 1.2},
    },
    "obs_overhead": {
        "enabled_overhead_pct": 2.0,
        "disabled_overhead_pct": 0.5,
    },
}
SERVICE_PAYLOAD = {
    "workloads": {
        "company_control": {"explain": {"speedup": 5.6}},
        "stress_test": {"explain": {"speedup": 10.3}},
    },
}
EXPLAIN_PAYLOAD = {
    "workloads": {
        "company_control": {"explain": {"speedup": 137.0},
                            "batch": {"speedup": 10.4}},
        "stress_test": {"explain": {"speedup": 117.8},
                        "batch": {"speedup": 18.7}},
    },
    "parity": {"scenarios": 7, "queries": 45, "identical": True},
}


class TestPathResolution:
    def test_wildcard_fans_over_dicts_and_lists(self):
        document = {"workloads": {"a": {"speedup": 2.0},
                                  "b": {"speedup": 3.0}}}
        matches = resolve_path(document, "workloads.*.speedup")
        assert sorted(value for _, value in matches) == [2.0, 3.0]
        assert {path for path, _ in matches} == {
            "workloads.a.speedup", "workloads.b.speedup",
        }

    def test_negative_index_selects_last_element(self):
        matches = resolve_path(ENGINE_PAYLOAD,
                               "transitive_closure.-1.planned_speedup_vs_naive")
        assert matches == [
            ("transitive_closure.-1.planned_speedup_vs_naive", 4.2)
        ]

    def test_missing_path_selects_nothing(self):
        assert resolve_path(ENGINE_PAYLOAD, "nope.*.deeper") == []

    def test_numeric_leaves_excludes_booleans(self):
        leaves = numeric_leaves({"a": 1, "b": True, "c": {"d": 2.5}})
        assert leaves == {"a": 1.0, "c.d": 2.5}


class TestDiffDocuments:
    def test_identical_documents_are_clean(self):
        report = diff_documents(ENGINE_PAYLOAD, ENGINE_PAYLOAD)
        assert report["ok"]
        assert report["regressions"] == []
        assert "diff: OK" in render_report(report)

    def test_latency_regression_beyond_tolerance_fails(self):
        baseline = {"phases": {"chase": 1.0}}
        candidate = {"phases": {"chase": 1.5}}
        report = diff_documents(baseline, candidate, tolerance_pct=10.0)
        assert not report["ok"]
        assert report["regressions"][0]["path"] == "phases.chase"
        assert "REGRESSION" in render_report(report)

    def test_regression_within_tolerance_passes(self):
        baseline = {"phases": {"chase": 1.0}}
        candidate = {"phases": {"chase": 1.05}}
        assert diff_documents(baseline, candidate, tolerance_pct=10.0)["ok"]

    def test_improvement_is_not_a_regression(self):
        baseline = {"phases": {"chase": 1.0}}
        candidate = {"phases": {"chase": 0.5}}
        report = diff_documents(baseline, candidate)
        assert report["ok"]
        assert report["improvements"][0]["path"] == "phases.chase"

    def test_non_latency_changes_are_informational(self):
        baseline = {"counters": {"requests": 10}}
        candidate = {"counters": {"requests": 400}}
        report = diff_documents(baseline, candidate, tolerance_pct=0.0)
        assert report["ok"]
        assert report["changes"][0]["path"] == "counters.requests"

    def test_rules_override_tolerance_and_ignore(self):
        baseline = {"phases": {"chase": 1.0, "compile": 1.0}}
        candidate = {"phases": {"chase": 1.4, "compile": 9.0}}
        report = diff_documents(
            baseline, candidate, tolerance_pct=10.0,
            rules=[
                {"path": "phases.chase", "max_regression_pct": 50},
                {"path": "phases.compile", "ignore": True},
            ],
        )
        assert report["ok"]

    def test_added_and_removed_leaves_reported(self):
        report = diff_documents({"a": 1}, {"b": 2})
        assert report["added"] == ["b"]
        assert report["removed"] == ["a"]


class TestGateConfig:
    def test_shipped_gate_config_loads(self):
        gates = load_gates(str(GATES_PATH))
        assert set(gates["suites"]) == {
            "engine", "service", "explain", "load", "incremental",
            "parallel",
        }

    def test_engine_suite_reproduces_planned_gates(self):
        gates = load_gates(str(GATES_PATH))
        report = check_gates(ENGINE_PAYLOAD, gates, suite="engine")
        assert report["ok"], render_report(report)

    def test_service_suite_reproduces_warm_start_gate(self):
        gates = load_gates(str(GATES_PATH))
        report = check_gates(SERVICE_PAYLOAD, gates, suite="service")
        assert report["ok"], render_report(report)

    def test_explain_suite_reproduces_serving_gates(self):
        gates = load_gates(str(GATES_PATH))
        report = check_gates(EXPLAIN_PAYLOAD, gates, suite="explain")
        assert report["ok"], render_report(report)

    @pytest.mark.parametrize("suite, payload, mutate", [
        ("engine", ENGINE_PAYLOAD,
         lambda d: d["transitive_closure"][-1].__setitem__(
             "planned_speedup_vs_naive", 1.4)),
        ("engine", ENGINE_PAYLOAD,
         lambda d: d["workloads"]["control_chain"].__setitem__(
             "planned_speedup_vs_seminaive", 0.8)),
        ("service", SERVICE_PAYLOAD,
         lambda d: d["workloads"]["stress_test"]["explain"].__setitem__(
             "speedup", 1.5)),
        ("explain", EXPLAIN_PAYLOAD,
         lambda d: d["workloads"]["company_control"]["batch"].__setitem__(
             "speedup", 3.0)),
        ("explain", EXPLAIN_PAYLOAD,
         lambda d: d["parity"].__setitem__("identical", False)),
    ])
    def test_injected_regression_fails_its_suite(self, suite, payload, mutate):
        gates = load_gates(str(GATES_PATH))
        broken = copy.deepcopy(payload)
        mutate(broken)
        report = check_gates(broken, gates, suite=suite)
        assert not report["ok"]
        assert "FAIL" in render_report(report)

    def test_silent_path_fails_unless_optional(self):
        gates = {"suites": {"s": [{"path": "missing.value", "min": 1.0}]}}
        report = check_gates({}, gates, suite="s")
        assert not report["ok"]
        gates["suites"]["s"][0]["optional"] = True
        assert check_gates({}, gates, suite="s")["ok"]

    def test_min_tolerance_loosens_floor(self):
        gates = {"suites": {"s": [
            {"path": "v", "min": 2.0, "tolerance_pct": 10},
        ]}}
        assert check_gates({"v": 1.85}, gates, suite="s")["ok"]
        assert not check_gates({"v": 1.7}, gates, suite="s")["ok"]

    def test_unknown_suite_raises(self):
        gates = load_gates(str(GATES_PATH))
        with pytest.raises(StatsDiffError):
            check_gates({}, gates, suite="nope")


class TestMalformedInput:
    def test_load_document_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(StatsDiffError):
            load_document(str(bad))
        with pytest.raises(StatsDiffError):
            load_document(str(tmp_path / "absent.json"))
        array = tmp_path / "array.json"
        array.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(StatsDiffError):
            load_document(str(array))

    def test_load_document_checks_format_tag(self, tmp_path):
        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps({"format": "other/9"}), encoding="utf-8")
        with pytest.raises(StatsDiffError):
            load_document(str(doc), expect_format="repro-stats/1")

    def test_load_gates_rejects_bad_shapes(self, tmp_path):
        for content in (
            {"suites": "nope"},
            {"suites": {"s": [{"min": 1.0}]}},          # no path
            {"suites": {"s": [{"path": "x"}]}},          # no assertion
            {"format": "other/1", "suites": {"s": []}},  # wrong format
        ):
            path = tmp_path / "gates.json"
            path.write_text(json.dumps(content), encoding="utf-8")
            with pytest.raises(StatsDiffError):
                load_gates(str(path))


class TestObsDiffCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_self_diff_exits_zero_and_writes_report(self, tmp_path, capsys):
        doc = self._write(tmp_path, "a.json", ENGINE_PAYLOAD)
        out = str(tmp_path / "report.json")
        assert main(["obs", "diff", doc, doc, "--output", out]) == 0
        report = json.loads(Path(out).read_text(encoding="utf-8"))
        assert report["format"] == "repro-diff/1"
        assert report["ok"]
        assert "diff: OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path):
        baseline = self._write(tmp_path, "a.json", {"phases": {"chase": 1.0}})
        candidate = self._write(tmp_path, "b.json", {"phases": {"chase": 2.0}})
        assert main(["obs", "diff", baseline, candidate]) == 1

    def test_gate_check_exit_codes(self, tmp_path):
        good = self._write(tmp_path, "good.json", SERVICE_PAYLOAD)
        broken = copy.deepcopy(SERVICE_PAYLOAD)
        broken["workloads"]["stress_test"]["explain"]["speedup"] = 1.2
        bad = self._write(tmp_path, "bad.json", broken)
        gates = str(GATES_PATH)
        assert main(["obs", "diff", "--check", good,
                     "--gates", gates, "--suite", "service"]) == 0
        assert main(["obs", "diff", "--check", bad,
                     "--gates", gates, "--suite", "service"]) == 1

    def test_malformed_document_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert main(["obs", "diff", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["obs", "top", str(bad)]) == 2
        assert main(["obs", "diff", "--check", str(bad),
                     "--gates", str(GATES_PATH), "--suite", "engine"]) == 2

    def test_missing_inputs_exit_two(self, tmp_path):
        doc = self._write(tmp_path, "a.json", ENGINE_PAYLOAD)
        assert main(["obs", "diff", doc]) == 2          # need two documents
        assert main(["obs", "diff", "--check", doc]) == 2  # --gates required

    def test_rules_file_feeds_diff(self, tmp_path):
        baseline = self._write(tmp_path, "a.json", {"phases": {"chase": 1.0}})
        candidate = self._write(tmp_path, "b.json", {"phases": {"chase": 2.0}})
        rules = self._write(
            tmp_path, "rules.json",
            [{"path": "phases.chase", "max_regression_pct": 200}],
        )
        assert main(["obs", "diff", baseline, candidate,
                     "--rules", rules]) == 0
