"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.aggregates import AggregateSpec
from repro.datalog.atoms import Atom
from repro.datalog.conditions import Comparison
from repro.datalog.errors import SafetyError
from repro.datalog.rules import Rule, pretty_label
from repro.datalog.terms import Variable


def v(name):
    return Variable(name)


def simple_rule(**overrides):
    defaults = dict(
        label="r",
        body=(Atom("Own", (v("x"), v("y"), v("s"))),),
        head=Atom("Control", (v("x"), v("y"))),
    )
    defaults.update(overrides)
    return Rule(**defaults)


class TestValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(SafetyError):
            simple_rule(body=())

    def test_condition_on_body_variable_ok(self):
        rule = simple_rule(conditions=(Comparison(">", v("s"), v("s")),))
        assert rule.conditions

    def test_condition_on_unbound_variable_rejected(self):
        with pytest.raises(SafetyError):
            simple_rule(conditions=(Comparison(">", v("zz"), v("s")),))

    def test_condition_on_aggregate_result_ok(self):
        rule = simple_rule(
            head=Atom("Control", (v("x"), v("y"))),
            aggregate=AggregateSpec(v("ts"), "sum", v("s")),
            conditions=(Comparison(">", v("ts"), v("s")),),
        )
        assert rule.aggregate is not None

    def test_aggregate_argument_must_be_bound(self):
        with pytest.raises(SafetyError):
            simple_rule(aggregate=AggregateSpec(v("ts"), "sum", v("zz")))

    def test_aggregate_result_must_be_fresh(self):
        with pytest.raises(SafetyError):
            simple_rule(aggregate=AggregateSpec(v("s"), "sum", v("s")))


class TestAggregateGrouping:
    def test_default_group_by_is_head_vars_minus_result(self):
        rule = Rule(
            label="beta",
            body=(
                Atom("Default", (v("d"),)),
                Atom("Debts", (v("d"), v("c"), v("v"))),
            ),
            head=Atom("Risk", (v("c"), v("e"))),
            aggregate=AggregateSpec(v("e"), "sum", v("v")),
        )
        assert rule.aggregate.group_by == (v("c"),)

    def test_explicit_group_by_preserved(self):
        rule = simple_rule(
            aggregate=AggregateSpec(v("ts"), "sum", v("s"), (v("x"), v("y"))),
        )
        assert rule.aggregate.group_by == (v("x"), v("y"))


class TestExistentials:
    def test_head_only_variables_are_existential(self):
        rule = simple_rule(head=Atom("Control", (v("x"), v("z"))))
        assert rule.existentials == frozenset({v("z")})
        assert rule.is_existential

    def test_no_existentials_in_safe_rule(self):
        assert simple_rule().existentials == frozenset()


class TestIntrospection:
    def test_body_variables(self):
        assert simple_rule().body_variables() == frozenset({v("x"), v("y"), v("s")})

    def test_body_predicates_deduplicated_in_order(self):
        rule = Rule(
            label="lambda3",
            body=(
                Atom("Control", (v("z"), v("x"))),
                Atom("Control", (v("z"), v("y"))),
            ),
            head=Atom("CloseLink", (v("x"), v("y"))),
        )
        assert rule.body_predicates() == ("Control",)

    def test_head_predicate(self):
        assert simple_rule().head_predicate == "Control"

    def test_has_aggregate(self):
        assert not simple_rule().has_aggregate

    def test_str_roundtrips_shape(self):
        text = str(simple_rule())
        assert "->" in text and "Own(x, y, s)" in text


class TestLabels:
    def test_greek_labels(self):
        assert pretty_label("alpha") == "α"
        assert pretty_label("sigma3") == "σ3"

    def test_unknown_labels_pass_through(self):
        assert pretty_label("lambda1") == "lambda1"

    def test_pretty_includes_label(self):
        assert simple_rule(label="sigma1").pretty().startswith("(σ1)")
