"""Tests for the service layer: compiled-program caching, the shared
bounded explanation LRU, batched serving, metrics, and warm starts."""

import pytest

from repro.apps import company_control, figures, stress_test
from repro.core import ExplanationService, LRUCache
from repro.core.service import BatchOutcome
from repro.datalog import fact
from repro.io import load_compiled_program, save_compiled_program
from repro.llm import SimulatedLLM


@pytest.fixture()
def service():
    with ExplanationService(max_workers=2) as svc:
        yield svc


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refreshes "a"
        cache.put("c", 3)                # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("k", "v")
        assert cache.get("k") is None

    def test_get_or_create_runs_factory_once_per_key(self):
        cache = LRUCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1


class TestCompileCache:
    def test_second_session_hits_cache(self, service, control_app):
        service.session(control_app, [company_control.own("A", "B", 0.6)])
        service.session(control_app, [company_control.own("C", "D", 0.8)])
        counters = service.metrics_snapshot()["counters"]
        assert counters["compile_misses"] == 1
        assert counters["compile_hits"] == 1

    def test_different_programs_compile_separately(
        self, service, control_app, stress_simple_app
    ):
        service.session(control_app, [company_control.own("A", "B", 0.6)])
        service.session(stress_simple_app, [
            stress_test.shock("A", 6), stress_test.has_capital("A", 5),
        ])
        assert service.metrics_snapshot()["counters"]["compile_misses"] == 2

    def test_compiled_cache_is_bounded(self, control_app, stress_simple_app):
        with ExplanationService(max_compiled_programs=1) as svc:
            svc.compile(control_app.program, control_app.glossary)
            svc.compile(stress_simple_app.program, stress_simple_app.glossary)
            assert len(svc.compiled_cache) == 1
            assert svc.compiled_cache.stats.evictions == 1


class TestSessions:
    def test_explain_matches_direct_explainer(self, service, figure8):
        scenario, result = figure8
        session = service.bind(scenario.application, result)
        direct = scenario.application.explainer(result)
        assert (
            session.explain(scenario.target, prefer_enhanced=False).text
            == direct.explain(scenario.target, prefer_enhanced=False).text
        )

    def test_explain_batch_preserves_order(self, service, control_app):
        session = service.session(control_app, [
            company_control.own("A", "B", 0.6),
            company_control.own("B", "C", 0.7),
            company_control.own("C", "D", 0.9),
        ])
        queries = list(session.answers())
        assert len(queries) > 2
        explanations = session.explain_batch(queries)
        assert [e.query for e in explanations] == queries
        sequential = [session.explain(q) for q in queries]
        assert [e.text for e in explanations] == [e.text for e in sequential]

    def test_explain_batch_empty(self, service, control_app):
        session = service.session(control_app, [])
        assert session.explain_batch([]) == []

    def test_shared_cache_hit_across_repeats(self, service, control_app):
        session = service.session(
            control_app, [company_control.own("A", "B", 0.6)]
        )
        query = fact("Control", "A", "B")
        first = session.explain(query)
        again = session.explain(query)
        assert first is again  # the cached object itself
        assert service.explanation_cache.stats.hits >= 1

    def test_two_sessions_do_not_share_entries(self, service, control_app):
        """Equal facts of different instances must not collide in the
        shared LRU: each binding's entries carry its own id."""
        a = service.session(control_app, [company_control.own("A", "B", 0.6)])
        b = service.session(control_app, [
            company_control.own("A", "B", 0.6),
            company_control.own("B", "C", 0.7),
        ])
        query = fact("Control", "A", "B")
        assert a.explain(query) is not b.explain(query)

    def test_report_and_why_not(self, service, control_app):
        session = service.session(
            control_app, [company_control.own("A", "B", 0.6)]
        )
        report = session.report(prefer_enhanced=False)
        assert len(report) == 1
        answer = session.why_not(fact("Control", "B", "A"))
        assert "does not hold" in answer.text
        counters = service.metrics_snapshot()["counters"]
        assert counters["reports"] == 1
        assert counters["why_not"] == 1

    def test_latency_counters_recorded(self, service, control_app):
        session = service.session(
            control_app, [company_control.own("A", "B", 0.6)]
        )
        session.explain(fact("Control", "A", "B"))
        latency = service.metrics_snapshot()["latency"]
        assert latency["compile"]["count"] == 1
        assert latency["chase"]["count"] == 1
        assert latency["explain"]["count"] == 1
        assert latency["explain"]["total_s"] >= 0.0

    def test_requires_glossary_for_bare_program(self, service, control_app):
        with pytest.raises(ValueError):
            service.session(control_app.program, [])


class TestWarmStart:
    def test_warm_start_skips_enhancement(self, tmp_path, control_app):
        artifact = tmp_path / "control.compiled.json"
        with ExplanationService(llm=SimulatedLLM(seed=0, faithful=True)) as cold:
            compiled = cold.compile(control_app.program, control_app.glossary)
            save_compiled_program(compiled, artifact)

        warm_llm = SimulatedLLM(seed=0, faithful=True)
        with ExplanationService(llm=warm_llm) as warm:
            warm.warm_start(artifact, control_app.program, control_app.glossary)
            restored = warm.compile(control_app.program, control_app.glossary)
            assert warm.metrics_snapshot()["counters"]["compile_hits"] == 1
            assert warm_llm.usage.calls == 0  # no enhancement calls at all
            for original, loaded in zip(
                compiled.store.templates(), restored.store.templates()
            ):
                assert loaded.enhanced_texts == original.enhanced_texts

    def test_load_validates_program(self, tmp_path, control_app, stress_app):
        artifact = tmp_path / "control.compiled.json"
        save_compiled_program(
            control_app.compile(), artifact
        )
        from repro.core import CompilationError

        with pytest.raises(CompilationError):
            load_compiled_program(
                artifact, stress_app.program, stress_app.glossary
            )


class TestBatchDeadlines:
    """Deadline-bounded explain_batch: partial results, never a hang."""

    @staticmethod
    def make_session(service, control_app):
        session = service.session(control_app, [
            company_control.own("A", "B", 0.6),
            company_control.own("B", "C", 0.7),
            company_control.own("C", "D", 0.9),
        ])
        return session, list(session.answers())

    @staticmethod
    def slow_down(session, seconds):
        """Make every explanation take at least ``seconds``."""
        import time as _time

        original = session.explainer.explain

        def slow(query, **options):
            _time.sleep(seconds)
            return original(query, **options)

        session.explainer.explain = slow

    def test_no_deadline_keeps_plain_explanation_list(
        self, service, control_app
    ):
        session, queries = self.make_session(service, control_app)
        explanations = session.explain_batch(queries)
        assert all(not isinstance(e, BatchOutcome) for e in explanations)
        assert [e.query for e in explanations] == queries

    def test_spent_deadline_misses_everything_in_order(
        self, service, control_app
    ):
        session, queries = self.make_session(service, control_app)
        outcomes = session.explain_batch(queries, deadline=0.0)
        assert len(outcomes) == len(queries)
        assert [o.query for o in outcomes] == queries
        for outcome in outcomes:
            assert isinstance(outcome, BatchOutcome)
            assert not outcome.ok
            assert outcome.status == BatchOutcome.STATUS_DEADLINE
            assert outcome.explanation is None
        counters = service.metrics_snapshot()["counters"]
        assert counters["explain_deadline_exceeded"] == len(queries)

    def test_sequential_batch_returns_partial_results(self, control_app):
        with ExplanationService(max_workers=1) as svc:
            session, queries = self.make_session(svc, control_app)
            queries = (queries * 3)[:4]
            self.slow_down(session, 0.05)
            outcomes = session.explain_batch(queries, deadline=0.08)
            assert len(outcomes) == 4
            assert outcomes[0].ok  # started with the full budget
            assert outcomes[0].explanation is not None
            assert not outcomes[-1].ok
            assert outcomes[-1].status == BatchOutcome.STATUS_DEADLINE
            counters = svc.metrics_snapshot()["counters"]
            assert counters["explain_deadline_exceeded"] >= 1
            assert counters["explanations"] == sum(o.ok for o in outcomes)

    def test_pool_batch_returns_partial_results_without_hanging(
        self, control_app
    ):
        import time as _time

        with ExplanationService(max_workers=2) as svc:
            session, queries = self.make_session(svc, control_app)
            queries = (queries * 6)[:6]
            self.slow_down(session, 0.1)
            started = _time.perf_counter()
            outcomes = session.explain_batch(queries, deadline=0.15)
            elapsed = _time.perf_counter() - started
            assert len(outcomes) == 6
            assert [o.query for o in outcomes] == queries
            # The first wave fits the budget; the tail is abandoned.
            assert outcomes[0].ok and outcomes[1].ok
            missed = [
                o for o in outcomes
                if o.status == BatchOutcome.STATUS_DEADLINE
            ]
            assert len(missed) >= 2
            for outcome in missed:
                assert outcome.explanation is None
            # Partial collection, not a drained queue: six 100ms tasks on
            # two workers would take ~300ms; the deadline cuts that short.
            assert elapsed < 1.0
