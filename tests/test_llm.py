"""Tests for the simulated-LLM substrate: rewriting, omission, dispatch."""

import random

import pytest

from repro.core.validation import completeness_ratio, constants_present
from repro.llm.client import (
    PARAPHRASE_PROMPT,
    PromptKind,
    REPHRASE_PROMPT,
    SUMMARY_PROMPT,
    classify_prompt,
)
from repro.llm.omission import (
    OmissionModel,
    PARAPHRASE_PROFILE,
    SUMMARY_PROFILE,
)
from repro.llm.rewriting import RewritingEngine, parse_sentence, split_sentences
from repro.llm.simulated import SimulatedLLM

SAMPLE = (
    "Since a shock amounting to 6 euro affects A, and A is a financial "
    "institution with capital of 5, and 6 is higher than 5, then A is in "
    "default. Since A is in default, and A has an amount 7 of debts with B, "
    "then B is at risk of defaulting given its loan of 7 euros."
)


class TestPromptClassification:
    def test_rephrase(self):
        kind, payload = classify_prompt(REPHRASE_PROMPT + "abc")
        assert kind is PromptKind.REPHRASE and payload == "abc"

    def test_paraphrase(self):
        kind, __ = classify_prompt(PARAPHRASE_PROMPT + "abc")
        assert kind is PromptKind.PARAPHRASE

    def test_summary(self):
        kind, __ = classify_prompt(SUMMARY_PROMPT + "abc")
        assert kind is PromptKind.SUMMARY

    def test_unknown(self):
        kind, payload = classify_prompt("Translate this: abc")
        assert kind is PromptKind.UNKNOWN and payload == "Translate this: abc"


class TestSentenceParsing:
    def test_split_sentences(self):
        assert len(split_sentences(SAMPLE)) == 2

    def test_parse_canonical(self):
        parsed = parse_sentence(split_sentences(SAMPLE)[0])
        assert parsed.is_canonical
        assert parsed.head == "A is in default"
        assert len(parsed.clauses) == 3

    def test_parse_non_canonical_passthrough(self):
        parsed = parse_sentence("Plain prose without markers.")
        assert not parsed.is_canonical
        assert parsed.raw == "Plain prose without markers."

    def test_aggregate_clause_regains_is(self):
        sentence = (
            "Since B is in default, and B has debts, with 11 given by the "
            "sum of 2 and 9, then C is at risk."
        )
        parsed = parse_sentence(sentence)
        assert "11 is given by the sum of 2 and 9" in parsed.clauses


class TestRewritingEngine:
    def test_paraphrase_keeps_all_constants(self):
        engine = RewritingEngine(random.Random(1))
        output = engine.paraphrase(SAMPLE)
        for constant in ("A", "B", "6", "5", "7"):
            assert constant in constants_present(output, [constant])

    def test_paraphrase_removes_rigid_markers(self):
        engine = RewritingEngine(random.Random(1))
        output = engine.paraphrase(SAMPLE)
        assert ", then " not in output

    def test_summary_deduplicates_repeated_clauses(self):
        engine = RewritingEngine(random.Random(1))
        output = engine.summarize(SAMPLE)
        # "A is in default" restated as the next body clause disappears.
        assert output.count("A is in default") <= 1

    def test_summary_is_shorter(self):
        engine = RewritingEngine(random.Random(1))
        assert len(engine.summarize(SAMPLE)) < len(SAMPLE)

    def test_determinism_given_seed(self):
        first = RewritingEngine(random.Random(5)).paraphrase(SAMPLE)
        second = RewritingEngine(random.Random(5)).paraphrase(SAMPLE)
        assert first == second

    def test_variability_across_seeds(self):
        outputs = {
            RewritingEngine(random.Random(seed)).paraphrase(SAMPLE)
            for seed in range(5)
        }
        assert len(outputs) >= 2


class TestOmissionModel:
    def test_probability_grows_with_length(self):
        assert (
            PARAPHRASE_PROFILE.number_probability(21)
            > PARAPHRASE_PROFILE.number_probability(3)
        )

    def test_summary_worse_than_paraphrase(self):
        for sentences in (5, 10, 20):
            assert (
                SUMMARY_PROFILE.number_probability(sentences)
                > PARAPHRASE_PROFILE.number_probability(sentences)
            )

    def test_entities_dropped_less_than_numbers(self):
        assert PARAPHRASE_PROFILE.entity_factor < 1.0

    def test_apply_replaces_all_mentions_together(self):
        model = OmissionModel(
            SUMMARY_PROFILE.__class__(base=1.0, slope=0, cap=1.0, entity_factor=0.0),
            random.Random(0),
        )
        output = model.apply("value 7 appears, then 7 again", sentences=30)
        assert "7" not in output
        assert "a certain amount" in output

    def test_zero_probability_is_identity(self):
        model = OmissionModel(
            SUMMARY_PROFILE.__class__(base=0.0, slope=0, cap=0.0, entity_factor=0.0),
            random.Random(0),
        )
        assert model.apply(SAMPLE, sentences=50) == SAMPLE

    def test_token_dropping_mode(self):
        model = OmissionModel(
            SUMMARY_PROFILE.__class__(base=1.0, slope=0, cap=1.0, entity_factor=1.0),
            random.Random(0),
        )
        output = model.apply_to_tokens("keep <f> and <p1> here")
        assert "<f>" not in output and "<p1>" not in output

    def test_prose_words_never_dropped(self):
        model = OmissionModel(
            SUMMARY_PROFILE.__class__(base=1.0, slope=0, cap=1.0, entity_factor=1.0),
            random.Random(0),
        )
        output = model.apply("Because A defaults, Thus B suffers", sentences=50)
        assert "Because" in output and "Thus" in output


class TestSimulatedLLM:
    def test_faithful_mode_never_loses_information(self):
        llm = SimulatedLLM(seed=3, faithful=True)
        output = llm.complete(SUMMARY_PROMPT + SAMPLE)
        assert completeness_ratio(output, ["A", "B", "6", "5", "7"]) == 1.0

    def test_deterministic_given_seed(self):
        first = SimulatedLLM(seed=9).complete(PARAPHRASE_PROMPT + SAMPLE)
        second = SimulatedLLM(seed=9).complete(PARAPHRASE_PROMPT + SAMPLE)
        assert first == second

    def test_repeated_calls_differ(self):
        llm = SimulatedLLM(seed=9, faithful=True)
        first = llm.complete(PARAPHRASE_PROMPT + SAMPLE)
        second = llm.complete(PARAPHRASE_PROMPT + SAMPLE)
        assert first != second

    def test_unknown_prompt_echoes_payload(self):
        llm = SimulatedLLM(seed=0)
        assert llm.complete("What is 2+2?") == "What is 2+2?"

    def test_usage_bookkeeping(self):
        llm = SimulatedLLM(seed=0)
        llm.complete(SUMMARY_PROMPT + "x.")
        llm.complete(SUMMARY_PROMPT + "x.")
        llm.complete(REPHRASE_PROMPT + "x.")
        assert llm.usage.calls == 3
        assert llm.usage.by_kind["summary"] == 2

    def test_omissions_grow_with_proof_length(self):
        """The Figure 17 mechanism at the unit level: longer deterministic
        inputs lose a larger fraction of their constants on average."""
        def omission_at(repeats, trials=30):
            text = " ".join(
                f"Since E{i} owes {i + 3} to E{i + 1}, then E{i + 1} is at risk."
                for i in range(repeats)
            )
            constants = [str(i + 3) for i in range(repeats)]
            total = 0.0
            for trial in range(trials):
                llm = SimulatedLLM(seed=trial)
                output = llm.complete(SUMMARY_PROMPT + text)
                total += 1 - completeness_ratio(output, constants)
            return total / trials

        assert omission_at(18) > omission_at(2)
