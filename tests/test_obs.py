"""Tests for the observability layer (repro.obs) and its integrations."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.apps import figures
from repro.core import ExplanationService, LRUCache, ServiceMetrics
from repro.core.service import ServiceMetrics as ServiceMetricsAlias
from repro.llm import SimulatedLLM
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    parse_trace_jsonl,
    render_prometheus,
    span_tree,
    stats_document,
    trace_jsonl,
)


class TestTracer:
    def test_span_nesting_records_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_completion_order_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [span.name for span in tracer.finished()]
        assert names == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.start_s >= outer.start_s
        assert inner.duration_s <= outer.duration_s

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("work", stage=1) as span:
            span.set(rounds=7)
        assert span.attrs == {"stage": 1, "rounds": 7}

    def test_disabled_tracer_returns_the_same_noop_object(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", heavy="attrs")
        second = tracer.span("b")
        assert first is second is NULL_SPAN
        with first as span:
            span.set(anything=1)  # all no-ops
        assert len(tracer) == 0

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        captured = {}
        with tracer.span("batch") as batch:
            def worker():
                with tracer.span("task", parent=batch) as task:
                    captured["parent"] = task.parent_id
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert captured["parent"] == batch.span_id

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("explodes"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.attrs["error"] == "ValueError"
        assert span.end_s is not None


class TestHistogram:
    def test_percentiles_on_uniform_samples(self):
        histogram = Histogram(buckets=[float(b) for b in range(1, 101)])
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert histogram.percentile(0) == pytest.approx(1.0, abs=1.0)
        assert histogram.percentile(100) == pytest.approx(100.0)

    def test_summary_exact_fields(self):
        histogram = Histogram(buckets=[1.0, 10.0])
        for value in (0.5, 2.0, 7.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(9.5)
        assert summary["mean"] == pytest.approx(9.5 / 3)
        assert summary["min"] == 0.5
        assert summary["max"] == 7.0

    def test_empty_summary_is_all_zero(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0

    def test_percentile_clamps_to_observed_range(self):
        histogram = Histogram(buckets=[100.0])  # one huge bucket
        for value in (4.0, 5.0, 6.0):
            histogram.observe(value)
        assert 4.0 <= histogram.percentile(50) <= 6.0

    def test_overflow_bucket_uses_observed_max(self):
        histogram = Histogram(buckets=[1.0])
        histogram.observe(50.0)
        assert histogram.percentile(99) <= 50.0

    def test_empty_histogram_percentiles_are_zero(self):
        histogram = Histogram()
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 0.0
        summary = histogram.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0
        assert summary["min"] == summary["max"] == 0.0

    def test_single_sample_percentiles_collapse_to_it(self):
        histogram = Histogram()
        histogram.observe(0.042)
        assert histogram.percentile(50) == pytest.approx(0.042)
        assert histogram.percentile(99) == pytest.approx(0.042)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["p50"] == pytest.approx(0.042)
        assert summary["p99"] == pytest.approx(0.042)

    def test_values_above_top_bucket_bound(self):
        histogram = Histogram(buckets=[1.0, 2.0])
        for value in (5.0, 9.0, 120.0):
            histogram.observe(value)
        assert histogram.counts[-1] == 3  # all landed in overflow
        summary = histogram.summary()
        assert summary["max"] == 120.0
        assert 5.0 <= histogram.percentile(50) <= 120.0
        assert histogram.percentile(100) == pytest.approx(120.0)

    def test_concurrent_observe_loses_no_samples(self):
        histogram = Histogram(buckets=[0.5])

        def hammer(base):
            for i in range(1000):
                histogram.observe(base + i * 1e-6)

        threads = [
            threading.Thread(target=hammer, args=(0.1 * n,))
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 8000
        assert sum(histogram.counts) == 8000

    def test_exemplar_retains_max_latency_sample_per_bucket(self):
        histogram = Histogram(buckets=[1.0, 10.0])
        histogram.observe(0.3, exemplar="q-1")
        histogram.observe(0.7, exemplar="q-2")   # same bucket, larger
        histogram.observe(0.5, exemplar="q-3")   # same bucket, smaller
        histogram.observe(5.0, exemplar="q-4")
        histogram.observe(99.0, exemplar="q-5")  # overflow bucket
        exemplars = histogram.exemplars()
        assert exemplars["1.0"] == {"value": 0.7, "exemplar": "q-2"}
        assert exemplars["10.0"] == {"value": 5.0, "exemplar": "q-4"}
        assert exemplars["+Inf"] == {"value": 99.0, "exemplar": "q-5"}

    def test_exemplars_optional_and_absent_by_default(self):
        histogram = Histogram(buckets=[1.0])
        histogram.observe(0.5)
        assert histogram.exemplars() == {}
        registry = MetricsRegistry()
        registry.observe("plain", 0.1)
        registry.observe("tagged", 0.1, exemplar="q-9")
        snapshot = registry.snapshot()
        assert "exemplars" not in snapshot["histograms"]["plain"]
        tagged = snapshot["histograms"]["tagged"]["exemplars"]
        assert list(tagged.values())[0]["exemplar"] == "q-9"


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.increment("requests")
        registry.increment("requests", 4)
        registry.set_gauge("pool_size", 8)
        registry.observe("latency", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 5
        assert snapshot["gauges"]["pool_size"] == 8
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_registered_cache_snapshot_is_live(self):
        registry = MetricsRegistry()
        cache = LRUCache(4)
        registry.register_cache("c", cache)
        cache.get("missing")
        snapshot = registry.snapshot()["caches"]["c"]
        assert snapshot["misses"] == 1
        assert snapshot["capacity"] == 4

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.increment("n")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n") == 8000


class TestServiceMetricsCompat:
    def test_alias_importable_from_service_module(self):
        assert ServiceMetricsAlias is ServiceMetrics

    def test_legacy_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.incr("explanations", 3)
        metrics.observe("explain", 0.5)
        metrics.observe("explain", 1.5)
        snapshot = metrics.snapshot()
        assert set(snapshot) == {"counters", "latency"}
        assert snapshot["counters"] == {"explanations": 3}
        explain = snapshot["latency"]["explain"]
        assert explain["count"] == 2
        assert explain["total_s"] == pytest.approx(2.0)
        assert explain["mean_s"] == pytest.approx(1.0)
        assert explain["max_s"] == pytest.approx(1.5)

    def test_counter_reads_back(self):
        metrics = ServiceMetrics()
        metrics.incr("x")
        assert metrics.counter("x") == 1
        assert metrics.counter("missing") == 0

    def test_registry_snapshot_has_percentiles(self):
        metrics = ServiceMetrics()
        metrics.observe("explain", 0.01)
        full = metrics.registry_snapshot()
        assert "p95" in full["histograms"]["explain"]


class TestExporters:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("root", program="demo"):
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b"):
                with tracer.span("grandchild"):
                    pass
        return tracer

    def test_trace_jsonl_round_trip(self):
        tracer = self._sample_tracer()
        spans = parse_trace_jsonl(trace_jsonl(tracer))
        assert len(spans) == 4
        roots = span_tree(spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "root"
        assert [child["name"] for child in root["children"]] == [
            "child.a", "child.b",
        ]
        assert root["children"][1]["children"][0]["name"] == "grandchild"

    def test_trace_header_is_validated(self):
        with pytest.raises(ValueError):
            parse_trace_jsonl('{"format": "something-else/9"}\n')

    def test_stats_document_has_stable_top_level_keys(self):
        tracer = self._sample_tracer()
        registry = MetricsRegistry()
        registry.increment("chase.runs")
        document = stats_document(registry, tracer=tracer)
        for key in obs.STATS_DOCUMENT_KEYS:
            assert key in document
        assert document["spans"]["root"]["count"] == 1
        json.dumps(document)  # must be serializable as-is

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.increment("chase.runs", 2)
        registry.observe("explain", 0.1)
        cache = LRUCache(2)
        cache.get("miss")
        registry.register_cache("explanation_cache", cache)
        text = render_prometheus(registry)
        assert "repro_chase_runs 2" in text
        assert 'repro_explain{quantile="0.5"}' in text
        assert "repro_explain_count 1" in text
        assert 'repro_cache_misses{cache="explanation_cache"} 1' in text


class TestAmbientContext:
    def test_default_ambient_tracer_is_disabled(self):
        assert obs.get_tracer().enabled is False
        assert obs.span("anything") is NULL_SPAN

    def test_observed_swaps_and_restores(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        before = obs.get_tracer()
        with obs.observed(tracer=tracer, metrics=registry):
            assert obs.get_tracer() is tracer
            obs.incr("inside")
            with obs.span("visible"):
                pass
        assert obs.get_tracer() is before
        assert registry.counter_value("inside") == 1
        assert [span.name for span in tracer.finished()] == ["visible"]


class TestLRUCacheAccounting:
    def test_get_or_create_counts_one_outcome_per_lookup(self):
        cache = LRUCache(4)
        cache.get_or_create("k", lambda: "v")   # miss + store
        cache.get_or_create("k", lambda: "w")   # hit
        snapshot = cache.snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["size"] == 1

    def test_snapshot_consistent_under_concurrency(self):
        cache = LRUCache(32)
        lookups_per_thread = 500
        workers = 8

        def hammer(seed: int):
            for index in range(lookups_per_thread):
                key = (seed * index) % 48  # some collisions, some misses
                cache.get_or_create(key, lambda key=key: key)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(1, workers + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = cache.snapshot()
        assert snapshot["hits"] + snapshot["misses"] == (
            lookups_per_thread * workers
        )
        assert snapshot["size"] <= 32

    def test_disabled_cache_never_stores_but_counts(self):
        cache = LRUCache(0)
        cache.get_or_create("k", lambda: "v")
        cache.get_or_create("k", lambda: "v")
        snapshot = cache.snapshot()
        assert snapshot["misses"] == 2
        assert snapshot["size"] == 0


class TestChaseStats:
    def test_firings_match_records(self):
        scenario = figures.figure15_instance()
        result = scenario.run().chase_result
        stats = result.stats
        assert sum(stats.rule_firings.values()) == len(result.records)
        assert stats.facts_derived == len(result.records)
        assert stats.rounds == result.rounds
        by_predicate: dict[str, int] = {}
        for record in result.records:
            predicate = record.fact.predicate
            by_predicate[predicate] = by_predicate.get(predicate, 0) + 1
        assert stats.facts_by_predicate == by_predicate

    def test_snapshot_is_json_serializable(self):
        scenario = figures.figure8_instance()
        stats = scenario.run().chase_result.stats.snapshot()
        json.dumps(stats)
        assert stats["rounds"] >= 1
        assert stats["strata"] >= 1
        assert stats["rule_firings"]

    def test_semi_naive_records_delta_sizes(self):
        from repro.engine.reasoning import reason

        scenario = figures.figure15_instance()
        result = reason(
            scenario.application.program, scenario.database,
            strategy="semi-naive",
        ).chase_result
        assert result.stats.delta_sizes
        assert result.stats.delta_sizes[-1] == 0  # fixpoint round


class TestInstrumentationParity:
    def test_observed_run_produces_identical_explanations(self):
        def explain_all(instrumented: bool):
            scenario = figures.figure15_instance()
            service = ExplanationService(
                llm=SimulatedLLM(seed=0, faithful=True)
            )
            if instrumented:
                with obs.observed(
                    tracer=Tracer(), metrics=ServiceMetrics()
                ):
                    session = service.session(
                        scenario.application, scenario.database
                    )
                    batch = session.explain_batch(list(session.answers()))
            else:
                session = service.session(
                    scenario.application, scenario.database
                )
                batch = session.explain_batch(list(session.answers()))
            service.shutdown()
            return [explanation.text for explanation in batch]

        assert explain_all(True) == explain_all(False)

    def test_observed_run_collects_expected_span_taxonomy(self):
        tracer = Tracer()
        metrics = ServiceMetrics()
        scenario = figures.figure15_instance()
        with obs.observed(tracer=tracer, metrics=metrics):
            service = ExplanationService(
                llm=SimulatedLLM(seed=0, faithful=True), metrics=metrics
            )
            session = service.session(scenario.application, scenario.database)
            session.explain(scenario.target)
            service.shutdown()
        names = {span.name for span in tracer.finished()}
        assert {
            "compile.program", "compile.analysis", "compile.depgraph",
            "compile.paths", "compile.verbalize", "compile.enhance",
            "chase.run", "chase.stratum", "chase.constraints",
            "service.compile", "service.chase", "service.explain",
        } <= names
        assert metrics.counter("chase.runs") == 1
        assert metrics.counter("llm.enhance_attempts") > 0
