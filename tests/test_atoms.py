"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import Atom, Predicate, check_consistent_arities, fact
from repro.datalog.errors import ArityError
from repro.datalog.terms import Constant, Null, Variable


class TestAtomBasics:
    def test_of_coerces_values(self):
        atom = Atom.of("Own", "A", "B", 0.6)
        assert atom.terms == (Constant("A"), Constant("B"), Constant(0.6))

    def test_arity(self):
        assert Atom.of("Own", "A", "B", 0.6).arity == 3

    def test_signature(self):
        assert Atom.of("Own", "A", "B", 0.6).signature == Predicate("Own", 3)

    def test_str(self):
        assert str(Atom.of("Shock", "A", 6)) == "Shock(A, 6)"

    def test_empty_predicate_rejected(self):
        with pytest.raises(ArityError):
            Atom("", (Constant(1),))

    def test_equality_and_hash(self):
        assert Atom.of("P", 1) == Atom.of("P", 1)
        assert len({Atom.of("P", 1), Atom.of("P", 1)}) == 1


class TestAtomIntrospection:
    def test_variables_in_order_with_repeats(self):
        atom = Atom("P", (Variable("x"), Constant(1), Variable("x"), Variable("y")))
        assert list(atom.variables()) == [Variable("x"), Variable("x"), Variable("y")]

    def test_variable_set(self):
        atom = Atom("P", (Variable("x"), Variable("x")))
        assert atom.variable_set() == frozenset({Variable("x")})

    def test_constants(self):
        atom = Atom("P", (Constant("A"), Variable("x"), Constant(2)))
        assert list(atom.constants()) == [Constant("A"), Constant(2)]

    def test_nulls(self):
        atom = Atom("P", (Null(1), Constant("A")))
        assert list(atom.nulls()) == [Null(1)]

    def test_is_fact_for_ground_atoms(self):
        assert Atom.of("P", "A", 1).is_fact()
        assert Atom("P", (Null(0),)).is_fact()

    def test_is_fact_false_with_variables(self):
        assert not Atom("P", (Variable("x"),)).is_fact()

    def test_with_terms(self):
        atom = Atom.of("P", "A")
        replaced = atom.with_terms([Constant("B")])
        assert replaced == Atom.of("P", "B")
        assert atom == Atom.of("P", "A")


class TestFactConstructor:
    def test_builds_ground_atom(self):
        assert fact("HasCapital", "A", 5).is_fact()

    def test_rejects_variables(self):
        with pytest.raises(ArityError):
            fact("P", Variable("x"))


class TestSchemaInference:
    def test_consistent_schema(self):
        schema = check_consistent_arities(
            [Atom.of("P", 1), Atom.of("Q", 1, 2), Atom.of("P", 3)]
        )
        assert schema == {"P": 1, "Q": 2}

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(ArityError):
            check_consistent_arities([Atom.of("P", 1), Atom.of("P", 1, 2)])
