"""Unit tests for repro.datalog.program."""

import pytest

from repro.datalog.errors import ArityError, DatalogError
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.program import Program, make_program


@pytest.fixture()
def control_program():
    return parse_program(
        """
        sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
        sigma2: Company(x) -> Control(x, x).
        sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
        """,
        name="cc",
        goal="Control",
    )


class TestClassification:
    def test_intensional_predicates(self, control_program):
        assert control_program.intensional_predicates() == frozenset({"Control"})

    def test_extensional_predicates(self, control_program):
        assert control_program.extensional_predicates() == frozenset(
            {"Own", "Company"}
        )

    def test_is_intensional(self, control_program):
        assert control_program.is_intensional("Control")
        assert not control_program.is_intensional("Own")


class TestSchema:
    def test_schema_inferred(self, control_program):
        assert control_program.schema == {"Own": 3, "Company": 1, "Control": 2}

    def test_inconsistent_arities_rejected(self):
        with pytest.raises(ArityError):
            make_program(
                "bad",
                [
                    parse_rule("P(x) -> Q(x)", "a"),
                    parse_rule("Q(x, y) -> R(x)", "b"),
                ],
            )

    def test_goal_must_exist(self):
        with pytest.raises(ArityError):
            parse_program("P(x) -> Q(x).", name="p", goal="Missing")


class TestAccess:
    def test_rule_lookup(self, control_program):
        assert control_program.rule("sigma2").head_predicate == "Control"

    def test_rule_lookup_missing(self, control_program):
        with pytest.raises(KeyError):
            control_program.rule("sigma9")

    def test_rules_deriving(self, control_program):
        labels = [r.label for r in control_program.rules_deriving("Control")]
        assert labels == ["sigma1", "sigma2", "sigma3"]

    def test_rules_consuming(self, control_program):
        labels = [r.label for r in control_program.rules_consuming("Own")]
        assert labels == ["sigma1", "sigma3"]

    def test_iteration_and_len(self, control_program):
        assert len(control_program) == 3
        assert len(list(control_program)) == 3


class TestConstruction:
    def test_empty_program_rejected(self):
        with pytest.raises(DatalogError):
            Program("empty", ())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DatalogError):
            make_program(
                "dup",
                [parse_rule("P(x) -> Q(x)", "r"), parse_rule("Q(x) -> R(x)", "r")],
            )

    def test_with_goal(self, control_program):
        retargeted = control_program.with_goal("Own")
        assert retargeted.goal == "Own"
        assert control_program.goal == "Control"

    def test_describe_mentions_edb_and_idb(self, control_program):
        text = control_program.describe()
        assert "EDB:" in text and "IDB:" in text
