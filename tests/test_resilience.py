"""Tests for the resilience layer: retries, deadlines, breaker, faults."""

import threading
import time

import pytest

from repro import obs
from repro.core.compiler import compile_program
from repro.core.enhancer import EnhancementError
from repro.llm import SimulatedLLM
from repro.resilience import (
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    FaultInjectingLLM,
    FaultSpecError,
    PermanentLLMError,
    ResilienceError,
    RetryPolicy,
    TransientLLMError,
    breaker_for,
    parse_fault_spec,
    resilient_complete,
    strip_tokens,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class CountingLLM:
    """Echoes the prompt payload; counts calls."""

    def __init__(self):
        self.calls = 0

    def complete(self, prompt: str) -> str:
        self.calls += 1
        return prompt


def no_sleep(_: float) -> None:
    pass


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

class TestTaxonomy:
    def test_all_errors_are_resilience_errors(self):
        for error in (TransientLLMError, PermanentLLMError,
                      DeadlineExceeded, CircuitOpen):
            assert issubclass(error, ResilienceError)

    def test_taxonomy_keeps_runtimeerror_compatibility(self):
        # Callers that caught bare RuntimeError keep working for one
        # release; EnhancementError is the documented migration alias.
        assert issubclass(ResilienceError, RuntimeError)
        assert EnhancementError is ResilienceError
        with pytest.raises(RuntimeError):
            raise TransientLLMError("legacy handlers still catch this")


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------

class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_when_spent(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("enhancement")  # fine while in budget
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="enhancement"):
            deadline.check("enhancement")

    def test_coerce(self):
        clock = FakeClock()
        assert Deadline.coerce(None) is None
        existing = Deadline.after(1.0, clock=clock)
        assert Deadline.coerce(existing) is existing
        coerced = Deadline.coerce(0.5, clock=clock)
        assert isinstance(coerced, Deadline)
        assert coerced.budget_s == pytest.approx(0.5)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=10.0, jitter=0.1, seed=42)
        delays = [policy.backoff_s(n) for n in (1, 2, 3)]
        again = [policy.backoff_s(n) for n in (1, 2, 3)]
        assert delays == again  # same seed, same schedule
        # Exponential shape survives the +/-10% jitter.
        assert 0.09 <= delays[0] <= 0.11
        assert 0.18 <= delays[1] <= 0.22
        assert 0.36 <= delays[2] <= 0.44

    def test_transient_then_success(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientLLMError("boom")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_last_transient(self):
        policy = RetryPolicy(max_attempts=2, sleep=no_sleep)
        with pytest.raises(TransientLLMError):
            policy.call(lambda: (_ for _ in ()).throw(TransientLLMError("x")))

    def test_permanent_error_not_retried(self):
        calls = []
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)

        def broken():
            calls.append(1)
            raise PermanentLLMError("bad request")

        with pytest.raises(PermanentLLMError):
            policy.call(broken)
        assert len(calls) == 1

    def test_deadline_stops_attempts(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep, clock=clock)
        clock.advance(2.0)
        calls = []
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: calls.append(1), deadline=deadline)
        assert not calls  # no attempt starts past the budget

    def test_backoff_never_sleeps_past_deadline(self):
        clock = FakeClock()
        deadline = Deadline.after(0.01, clock=clock)
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=5.0, sleep=slept.append, clock=clock,
        )
        with pytest.raises(DeadlineExceeded):
            policy.call(
                lambda: (_ for _ in ()).throw(TransientLLMError("x")),
                deadline=deadline,
            )
        assert not slept  # a 5s backoff does not fit a 10ms budget


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------

def tripped_breaker(clock, **kwargs):
    defaults = dict(window=4, failure_threshold=0.5, min_calls=2,
                    cooldown_s=30.0, clock=clock)
    defaults.update(kwargs)
    breaker = CircuitBreaker(**defaults)
    breaker.record_failure()
    breaker.record_failure()
    return breaker


class TestCircuitBreaker:
    def test_opens_at_failure_rate(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, failure_threshold=0.5,
                                 min_calls=2, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"  # below min_calls
        breaker.record_failure()
        assert breaker.state == "open"

    def test_open_rejects_without_calling_backend(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        calls = []
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: calls.append(1))
        assert not calls

    def test_successes_keep_rate_below_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, failure_threshold=0.75,
                                 min_calls=4, clock=clock)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/4 < 0.75

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(31.0)
        assert breaker.state == "half_open"
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(31.0)
        with pytest.raises(TransientLLMError):
            breaker.call(lambda: (_ for _ in ()).throw(TransientLLMError("x")))
        assert breaker.state == "open"
        # ... and the new cooldown starts from the probe failure.
        clock.advance(29.0)
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.state == "half_open"

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(31.0)
        breaker.allow()  # the probe slot
        with pytest.raises(CircuitOpen):
            breaker.allow()  # concurrent second call is rejected

    def test_thread_safety_under_concurrent_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=64, failure_threshold=0.9,
                                 min_calls=64, clock=clock)
        threads = [
            threading.Thread(target=breaker.record_failure)
            for _ in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.snapshot()["failures_in_window"] == 32

    def test_breaker_for_is_shared_per_client(self):
        first, second = CountingLLM(), CountingLLM()
        assert breaker_for(first) is breaker_for(first)
        assert breaker_for(first) is not breaker_for(second)


# ----------------------------------------------------------------------
# Fault SPEC parsing and the injector
# ----------------------------------------------------------------------

class TestFaultSpec:
    def test_counted_directives(self):
        rules = parse_fault_spec("transient:3,permanent:1,drop:2")
        assert [(r.kind, r.count) for r in rules] == [
            ("transient", 3), ("permanent", 1), ("drop", 2),
        ]

    def test_slow_and_rate(self):
        slow, rate = parse_fault_spec("slow:5:0.25,rate:0.3:permanent")
        assert (slow.kind, slow.count, slow.seconds) == ("slow", 5, 0.25)
        assert (rate.kind, rate.probability, rate.error_kind) == (
            "rate", 0.3, "permanent",
        )

    def test_rate_defaults_to_transient(self):
        (rule,) = parse_fault_spec("rate:0.5")
        assert rule.error_kind == "transient"

    @pytest.mark.parametrize("bad", [
        "bogus:1", "transient", "transient:x", "slow:3", "rate:1.5",
        "rate:0.5:weird",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_empty_spec_is_no_faults(self):
        assert parse_fault_spec("") == []


class TestFaultInjectingLLM:
    def test_counted_transients_then_healthy(self):
        inner = CountingLLM()
        llm = FaultInjectingLLM(inner, "transient:2")
        for _ in range(2):
            with pytest.raises(TransientLLMError):
                llm.complete("p")
        assert llm.complete("p") == "p"
        assert inner.calls == 1  # faults fire before the backend is hit
        assert llm.injected == {"transient": 2}

    def test_permanent_fault(self):
        llm = FaultInjectingLLM(CountingLLM(), "permanent:1")
        with pytest.raises(PermanentLLMError):
            llm.complete("p")
        assert llm.complete("p") == "p"

    def test_drop_strips_tokens(self):
        llm = FaultInjectingLLM(CountingLLM(), "drop:1")
        assert llm.complete("keep <a> and <b>") == "keep  and "
        assert llm.complete("keep <a>") == "keep <a>"

    def test_slow_uses_injectable_sleep(self):
        delays = []
        llm = FaultInjectingLLM(
            CountingLLM(), "slow:2:0.25", sleep=delays.append
        )
        for _ in range(3):
            llm.complete("p")
        assert delays == [0.25, 0.25]

    def test_rate_is_seeded_and_deterministic(self):
        def failures(seed):
            llm = FaultInjectingLLM(CountingLLM(), "rate:0.5", seed=seed)
            failed = 0
            for _ in range(32):
                try:
                    llm.complete("p")
                except TransientLLMError:
                    failed += 1
            return failed

        assert failures(7) == failures(7)
        assert 4 < failures(7) < 28  # actually probabilistic, not 0%/100%

    def test_signature_distinguishes_fault_runs(self):
        inner = SimulatedLLM(seed=0, faithful=True)
        wrapped = FaultInjectingLLM(inner, "transient:1", seed=3)
        assert inner.signature() in wrapped.signature()
        assert wrapped.signature() != inner.signature()

    def test_strip_tokens(self):
        assert strip_tokens("a <x> b <y-z> c") == "a  b  c"


# ----------------------------------------------------------------------
# resilient_complete: retry + breaker composition
# ----------------------------------------------------------------------

class TestResilientComplete:
    def test_retries_through_to_success(self):
        llm = FaultInjectingLLM(CountingLLM(), "transient:2")
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)
        assert resilient_complete(llm, "p", policy=policy) == "p"

    def test_open_breaker_short_circuits_without_backend_call(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        inner = CountingLLM()
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)
        with pytest.raises(CircuitOpen):
            resilient_complete(inner, "p", policy=policy, breaker=breaker)
        assert inner.calls == 0  # CircuitOpen is not retried either

    def test_failures_feed_the_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=8, failure_threshold=0.5,
                                 min_calls=2, clock=clock)
        llm = FaultInjectingLLM(CountingLLM(), "transient:4")
        policy = RetryPolicy(max_attempts=2, sleep=no_sleep)
        with pytest.raises((TransientLLMError, CircuitOpen)):
            resilient_complete(llm, "p", policy=policy, breaker=breaker)
        assert breaker.state == "open"


# ----------------------------------------------------------------------
# Acceptance: compile under a 30%-flaky backend degrades, never drops
# ----------------------------------------------------------------------

class TestDegradedCompile:
    def test_compile_under_30pct_transient_faults_keeps_every_path(self):
        from repro.apps import company_control

        app = company_control.build()
        llm = FaultInjectingLLM(
            SimulatedLLM(seed=0, faithful=True), "rate:0.3", seed=3
        )
        registry = obs.ServiceMetrics()
        with obs.observed(metrics=registry):
            compiled = compile_program(
                app.program, app.glossary, llm=llm,
                retry_policy=RetryPolicy(sleep=no_sleep),
            )
        report = compiled.enhancement_report
        store = compiled.store
        # No reasoning path is dropped: every template still carries its
        # deterministic base text; enhancement is per-path best-effort.
        assert len(store) > 0
        for template in store.templates():
            assert template.deterministic_text
        assert report.enhanced + report.fallbacks == len(store)
        assert report.fallbacks > 0  # seed 3 exhausts some retry budgets
        assert report.enhanced > 0
        # ... and the degradation is visible in the stats document.
        document = obs.stats_document(registry)
        assert document["counters"]["enhance.fallback_total"] > 0
        assert document["counters"]["enhance.fallback_total"] == report.fallbacks

    def test_healthy_backend_records_no_fallbacks(self):
        from repro.apps import company_control

        app = company_control.build()
        registry = obs.ServiceMetrics()
        with obs.observed(metrics=registry):
            compiled = compile_program(
                app.program, app.glossary,
                llm=SimulatedLLM(seed=0, faithful=True),
            )
        assert compiled.enhancement_report.fallbacks == 0
        assert registry.counter_value("enhance.fallback_total") == 0
