"""Tests for the HTTP serving layer: wire-protocol schemas, admission
control (queue overflow + breaker-open shedding), deadline semantics
over HTTP, flight-record lookup, and the byte-parity contract between
served bodies and direct in-process serialization."""

import http.client
import json

import pytest

from repro.apps import figures, generators
from repro.core import ExplanationService
from repro.io import dumps_database, loads_database, parse_fact
from repro.resilience.policy import Deadline
from repro.serve import (
    SERVE_FORMAT,
    BatchRequest,
    ExplainRequest,
    ExplanationServer,
    ProtocolError,
    ServeConfig,
    UpdateRequest,
    WhyNotRequest,
    batch_payload,
    encode_body,
    error_payload,
    explanation_payload,
    parse_batch_request,
    parse_explain_request,
    parse_update_request,
    parse_whynot_request,
    whynot_payload,
)


def _body(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _request(server, method, path, payload=None, connection=None):
    """One HTTP exchange; returns (status, headers, body bytes)."""
    own = connection is None
    if own:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
    try:
        body = _body(payload) if payload is not None else None
        connection.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = connection.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        if own:
            connection.close()


# ----------------------------------------------------------------------
# Protocol schemas
# ----------------------------------------------------------------------

class TestProtocolRoundTrips:
    def test_explain_request_round_trip(self):
        request = parse_explain_request(_body({
            "query": "Control(IrishBank, MadridCredit)",
            "prefer_enhanced": False,
            "deadline_s": 2.5,
            "audit": True,
        }))
        assert isinstance(request, ExplainRequest)
        assert str(request.query) == "Control(IrishBank, MadridCredit)"
        assert request.prefer_enhanced is False
        assert request.deadline_s == 2.5
        assert request.audit is True

    def test_explain_request_defaults(self):
        request = parse_explain_request(_body({"query": "Own(A, B, 1.0)"}))
        assert request.prefer_enhanced is True
        assert request.deadline_s is None
        assert request.audit is False

    def test_batch_request_round_trip(self):
        request = parse_batch_request(_body({
            "queries": ["Control(A, B)", "Control(B, C)"],
            "deadline_s": 1,
        }))
        assert isinstance(request, BatchRequest)
        assert [str(query) for query in request.queries] == [
            "Control(A, B)", "Control(B, C)",
        ]
        assert request.deadline_s == 1.0

    def test_whynot_request_round_trip(self):
        request = parse_whynot_request(_body({"query": "Control(A, B)"}))
        assert isinstance(request, WhyNotRequest)
        assert str(request.query) == "Control(A, B)"

    @pytest.mark.parametrize("body", [
        b"",
        b"not json",
        b"[1, 2]",
        _body({}),
        _body({"query": 7}),
        _body({"query": "   "}),
        _body({"query": "Control(x, y)"}),          # variables: not ground
        _body({"query": "Control(A, B)", "deadline_s": -1}),
        _body({"query": "Control(A, B)", "deadline_s": True}),
        _body({"query": "Control(A, B)", "audit": "yes"}),
    ])
    def test_explain_request_rejections(self, body):
        with pytest.raises(ProtocolError) as excinfo:
            parse_explain_request(body)
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("body", [
        _body({}),
        _body({"queries": []}),
        _body({"queries": "Control(A, B)"}),
        _body({"queries": ["Control(A, B)", 3]}),
    ])
    def test_batch_request_rejections(self, body):
        with pytest.raises(ProtocolError):
            parse_batch_request(body)

    def test_update_request_round_trip(self):
        request = parse_update_request(_body({
            "adds": ["Own(A, B, 0.6)", "Company(B)"],
            "retracts": ["Own(A, C, 0.4)"],
        }))
        assert isinstance(request, UpdateRequest)
        assert [str(fact) for fact in request.adds] == [
            "Own(A, B, 0.6)", "Company(B)",
        ]
        assert [str(fact) for fact in request.retracts] == ["Own(A, C, 0.4)"]

    def test_update_request_one_side_suffices(self):
        request = parse_update_request(_body({"adds": ["Company(A)"]}))
        assert request.retracts == ()
        request = parse_update_request(_body({"retracts": ["Company(A)"]}))
        assert request.adds == ()

    @pytest.mark.parametrize("body", [
        b"",
        b"not json",
        _body({}),                                   # empty delta
        _body({"adds": [], "retracts": []}),
        _body({"adds": "Company(A)"}),               # not a list
        _body({"adds": [7]}),
        _body({"adds": ["Company(x)"]}),             # variables: not ground
        _body({"retracts": ["   "]}),
    ])
    def test_update_request_rejections(self, body):
        with pytest.raises(ProtocolError) as excinfo:
            parse_update_request(body)
        assert excinfo.value.status == 400

    def test_encode_body_is_canonical(self):
        payload = {"zebra": 1, "alpha": {"beta": "é"}}
        body = encode_body(payload)
        assert body.endswith(b"\n")
        assert body == b'{"alpha": {"beta": "\xc3\xa9"}, "zebra": 1}\n'
        assert json.loads(body.decode("utf-8")) == payload

    def test_error_payload_shape(self):
        payload = error_payload("shed", "queue full", results=[{"x": 1}])
        assert payload["format"] == SERVE_FORMAT
        assert payload["status"] == "shed"
        assert payload["error"] == "queue full"
        assert payload["results"] == [{"x": 1}]


# ----------------------------------------------------------------------
# A shared warm server over the Figure 15 company-control instance
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def scenario():
    return figures.figure15_instance()


@pytest.fixture(scope="module")
def snapshot(scenario):
    return dumps_database(scenario.database)


@pytest.fixture(scope="module")
def server(scenario, snapshot):
    instance = ExplanationServer(
        scenario.application, snapshot=snapshot,
        config=ServeConfig(
            workers=1, strategy="planned",
            slo_period_s=60.0, slo_interval_requests=10_000,
        ),
        llm=None,
    )
    with instance.run_in_thread():
        yield instance


@pytest.fixture(scope="module")
def direct(scenario, snapshot):
    service = ExplanationService(llm=None)
    session = service.session(
        scenario.application, loads_database(snapshot), strategy="planned"
    )
    yield session
    service.shutdown()


class TestEndpoints:
    def test_healthz(self, server):
        status, _headers, data = _request(server, "GET", "/healthz")
        assert status == 200
        payload = json.loads(data)
        assert payload["format"] == SERVE_FORMAT
        assert payload["status"] == "ok"
        assert payload["workers"] == 1
        assert payload["admission"]["limit"] == server.config.queue_limit
        assert payload["warm_start"]["warm_start_max_s"] >= 0

    def test_explain_and_flight_lookup(self, server, scenario):
        status, headers, data = _request(
            server, "POST", "/explain", {"query": str(scenario.target)}
        )
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert payload["query"] == str(scenario.target)
        assert payload["text"]
        assert payload["paths"]
        query_id = headers.get("X-Query-Id")
        assert query_id  # the flight id travels as a header, not the body
        status, _headers, data = _request(
            server, "GET", f"/flight/{query_id}"
        )
        assert status == 200
        document = json.loads(data)
        assert document["format"] == "repro-flight/1"
        assert len(document["records"]) == 1
        assert document["records"][0]["query_id"] == query_id

    def test_flight_unknown_query_id_is_404(self, server):
        status, _headers, data = _request(
            server, "GET", "/flight/nonexistent-qid"
        )
        assert status == 404
        assert json.loads(data)["status"] == "not_found"

    def test_metrics_prometheus_text(self, server, scenario):
        _request(server, "POST", "/explain", {"query": str(scenario.target)})
        status, headers, data = _request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = data.decode("utf-8")
        assert "repro_serve_requests" in text
        assert "repro_serve_ok" in text

    def test_underivable_fact_is_404(self, server):
        status, _headers, data = _request(
            server, "POST", "/explain",
            {"query": "Control(Absentia0, Absentia1)"},
        )
        assert status == 404
        assert json.loads(data)["status"] == "not_derived"

    def test_malformed_body_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            connection.request("POST", "/explain", body=b"not json")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["status"] == "bad_request"
        finally:
            connection.close()

    def test_unknown_routes_and_methods(self, server):
        status, _headers, _data = _request(server, "GET", "/nope")
        assert status == 404
        status, _headers, _data = _request(
            server, "POST", "/nope", {"query": "Control(A, B)"}
        )
        assert status == 404
        status, _headers, _data = _request(server, "DELETE", "/explain")
        assert status == 405

    def test_keep_alive_serves_sequential_requests(self, server, scenario):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            for _ in range(3):
                status, _headers, data = _request(
                    server, "POST", "/explain",
                    {"query": str(scenario.target)},
                    connection=connection,
                )
                assert status == 200
                assert json.loads(data)["status"] == "ok"
        finally:
            connection.close()

    def test_explain_zero_deadline_is_504(self, server, scenario):
        status, _headers, data = _request(
            server, "POST", "/explain",
            {"query": str(scenario.target), "deadline_s": 0.0},
        )
        assert status == 504
        payload = json.loads(data)
        assert payload["status"] == "deadline_exceeded"
        assert payload["results"] == []

    def test_batch_zero_deadline_is_504_with_partial_body(
        self, server, scenario
    ):
        queries = [str(scenario.target)] * 3
        status, _headers, data = _request(
            server, "POST", "/explain/batch",
            {"queries": queries, "deadline_s": 0.0},
        )
        assert status == 504
        payload = json.loads(data)
        # The explain_batch contract over HTTP: a spent budget still
        # returns every outcome, marking the missed tail.
        assert payload["status"] == "partial"
        assert payload["missed"] > 0
        assert len(payload["results"]) == 3
        statuses = {entry["status"] for entry in payload["results"]}
        assert "deadline_exceeded" in statuses

    def test_batch_within_deadline_is_200(self, server, scenario):
        status, _headers, data = _request(
            server, "POST", "/explain/batch",
            {"queries": [str(scenario.target)], "deadline_s": 30.0},
        )
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert payload["served"] == 1
        assert payload["missed"] == 0

    def test_whynot_over_http(self, server):
        status, _headers, data = _request(
            server, "POST", "/whynot",
            {"query": "Control(Absentia0, Absentia1)"},
        )
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert payload["obstacles"]


# ----------------------------------------------------------------------
# Admission control: queue overflow and breaker-open shedding
# ----------------------------------------------------------------------

class TestAdmission:
    def test_queue_overflow_sheds_503_with_retry_after(
        self, scenario, snapshot
    ):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=1, queue_limit=0, retry_after_s=2.0,
                strategy="planned",
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        with instance.run_in_thread():
            status, headers, data = _request(
                instance, "POST", "/explain",
                {"query": str(scenario.target)},
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 2
            payload = json.loads(data)
            assert payload["status"] == "shed"
            assert "queue" in payload["error"]
            assert instance.metrics.counter_value("serve.shed_queue") == 1

    def test_open_breaker_sheds_503(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=1, strategy="planned",
                breaker_window=4, breaker_min_calls=2,
                breaker_cooldown_s=60.0,
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        with instance.run_in_thread():
            # A healthy server serves...
            status, _headers, _data = _request(
                instance, "POST", "/explain",
                {"query": str(scenario.target)},
            )
            assert status == 200
            # ... then sustained SLO breaches open the breaker.
            for _ in range(4):
                instance.breaker.observe_health(False)
            status, headers, data = _request(
                instance, "POST", "/explain",
                {"query": str(scenario.target)},
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 60
            payload = json.loads(data)
            assert payload["status"] == "shed"
            assert "circuit open" in payload["error"]
            assert (
                instance.metrics.counter_value("serve.shed_breaker") == 1
            )
            status, _headers, data = _request(instance, "GET", "/healthz")
            assert status == 200
            assert json.loads(data)["status"] == "shedding"


# ----------------------------------------------------------------------
# Byte parity: HTTP bodies == direct in-process serialization
# ----------------------------------------------------------------------

#: One scenario per bundled application family.
PARITY_SCENARIOS = (
    figures.figure8_instance,                      # integrated ownership
    figures.figure12_stress_instance,              # stress testing
    figures.figure15_instance,                     # company control
    lambda: generators.close_links_common_control(seed=0),
)


class TestByteParity:
    @pytest.mark.parametrize(
        "build", PARITY_SCENARIOS,
        ids=lambda build: getattr(build, "__name__", "generated"),
    )
    def test_served_bytes_equal_direct_serialization(self, build):
        parity_scenario = build()
        parity_snapshot = dumps_database(parity_scenario.database)
        service = ExplanationService(llm=None)
        session = service.session(
            parity_scenario.application,
            loads_database(parity_snapshot), strategy="planned",
        )
        instance = ExplanationServer(
            parity_scenario.application, snapshot=parity_snapshot,
            config=ServeConfig(workers=1, strategy="planned"),
            llm=None,
        )
        try:
            with instance.run_in_thread():
                targets = [
                    query for query in session.answers()
                    if query.predicate == parity_scenario.target.predicate
                    and session.result.chase_result.is_derived(query)
                ][:4] or [parity_scenario.target]
                for query in targets:
                    status, _headers, served = _request(
                        instance, "POST", "/explain",
                        {"query": str(query)},
                    )
                    assert status == 200
                    expected = encode_body(
                        explanation_payload(session.explain(query))
                    )
                    assert served == expected, f"diverged on {query}"
                status, _headers, served = _request(
                    instance, "POST", "/explain/batch",
                    {
                        "queries": [str(query) for query in targets],
                        "deadline_s": 30.0,
                    },
                )
                assert status == 200
                expected = encode_body(batch_payload(
                    session.explain_batch(targets, deadline=Deadline(30.0))
                ))
                assert served == expected
                arity = parity_scenario.target.arity
                absent = "{}({})".format(
                    parity_scenario.target.predicate,
                    ", ".join(f"Absentia{n}" for n in range(arity)),
                )
                status, _headers, served = _request(
                    instance, "POST", "/whynot", {"query": absent}
                )
                assert status == 200
                expected = encode_body(
                    whynot_payload(session.why_not(parse_fact(absent)))
                )
                assert served == expected
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# Live updates over HTTP: POST /update
# ----------------------------------------------------------------------

class TestUpdateEndpoint:
    """POST /update against a dedicated server (updates mutate worker
    state, so the module-scoped shared server stays out of this), with a
    mirror in-process session applying the same deltas for byte parity."""

    @pytest.fixture()
    def setup(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=1, strategy="planned",
                breaker_window=4, breaker_min_calls=2,
                breaker_cooldown_s=60.0,
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        service = ExplanationService(llm=None)
        mirror = service.session(
            scenario.application, loads_database(snapshot),
            strategy="planned",
        )
        try:
            with instance.run_in_thread():
                yield instance, mirror
        finally:
            service.shutdown()

    def test_update_then_explain_byte_parity(self, setup):
        instance, mirror = setup
        adds = ["Company(Absentia0)", "Own(IrishBank, Absentia0, 0.9)"]
        status, _headers, data = _request(
            instance, "POST", "/update", {"adds": adds}
        )
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert payload["mode"] == "incremental"
        assert payload["added"] == adds
        assert payload["retracted"] == []
        assert payload["replayed"] > 0
        mirror.update(adds=[parse_fact(entry) for entry in adds])
        derived = "Control(IrishBank, Absentia0)"
        status, _headers, served = _request(
            instance, "POST", "/explain", {"query": derived}
        )
        assert status == 200
        expected = encode_body(
            explanation_payload(mirror.explain(parse_fact(derived)))
        )
        assert served == expected
        assert instance.metrics.counter_value("serve.updates") == 1

    def test_retraction_switches_explain_to_whynot(self, setup, scenario):
        # Dropping the FrenchPLC edge starves IrishBank's joint majority
        # over MadridCredit: the old answer must 404 and the why-not
        # report must match the mirror byte for byte.
        instance, mirror = setup
        edge = "Own(FrenchPLC, MadridCredit, 0.21)"
        status, _headers, data = _request(
            instance, "POST", "/update", {"retracts": [edge]}
        )
        assert status == 200
        assert json.loads(data)["retracted"] == [edge]
        mirror.update(retracts=[parse_fact(edge)])
        target = str(scenario.target)
        status, _headers, _data = _request(
            instance, "POST", "/explain", {"query": target}
        )
        assert status == 404
        status, _headers, served = _request(
            instance, "POST", "/whynot", {"query": target}
        )
        assert status == 200
        expected = encode_body(
            whynot_payload(mirror.why_not(parse_fact(target)))
        )
        assert served == expected

    def test_retracting_derived_fact_is_400(self, setup):
        instance, _mirror = setup
        status, _headers, data = _request(
            instance, "POST", "/update",
            {"retracts": ["Control(IrishBank, FondoItaliano)"]},
        )
        assert status == 400
        payload = json.loads(data)
        assert payload["status"] == "bad_request"
        assert "derived" in payload["error"]
        assert instance.metrics.counter_value("serve.bad_requests") == 1

    def test_empty_delta_is_400(self, setup):
        instance, _mirror = setup
        status, _headers, data = _request(
            instance, "POST", "/update", {"adds": [], "retracts": []}
        )
        assert status == 400
        assert json.loads(data)["status"] == "bad_request"

    def test_open_breaker_sheds_update_503(self, setup):
        instance, _mirror = setup
        for _ in range(4):
            instance.breaker.observe_health(False)
        status, headers, data = _request(
            instance, "POST", "/update",
            {"adds": ["Company(Absentia0)"]},
        )
        assert status == 503
        assert int(headers["Retry-After"]) >= 60
        payload = json.loads(data)
        assert payload["status"] == "shed"
        assert "circuit open" in payload["error"]


# ----------------------------------------------------------------------
# Satellite fixes: integer Retry-After, breaker cooldown in /healthz,
# per-worker boot telemetry
# ----------------------------------------------------------------------

class TestRetryAfterAndCooldown:
    @pytest.fixture()
    def shedding(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=1, strategy="planned",
                breaker_window=4, breaker_min_calls=2,
                breaker_cooldown_s=45.5,
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        with instance.run_in_thread():
            yield instance

    def test_retry_after_is_integer_ceil_of_remaining(self, shedding):
        for _ in range(4):
            shedding.breaker.observe_health(False)
        status, headers, _data = _request(
            shedding, "POST", "/explain", {"query": "Control(A, B)"}
        )
        assert status == 503
        retry_after = headers["Retry-After"]
        assert "." not in retry_after  # integer seconds, not a float
        # ceil of the *remaining* cooldown (45.5s window, just opened).
        assert 1 <= int(retry_after) <= 46

    def test_healthz_surfaces_remaining_cooldown(self, shedding):
        status, _headers, data = _request(shedding, "GET", "/healthz")
        payload = json.loads(data)
        assert status == 200
        assert payload["breaker_cooldown_remaining_s"] == 0.0
        for _ in range(4):
            shedding.breaker.observe_health(False)
        status, _headers, data = _request(shedding, "GET", "/healthz")
        payload = json.loads(data)
        assert payload["status"] == "shedding"
        remaining = payload["breaker_cooldown_remaining_s"]
        assert 0.0 < remaining <= 45.5
        # The nested admission view reads its own clock a hair later.
        nested = payload["admission"]["breaker"]["cooldown_remaining_s"]
        assert abs(nested - remaining) < 0.5

    def test_healthz_names_backend(self, server):
        _status, _headers, data = _request(server, "GET", "/healthz")
        payload = json.loads(data)
        assert payload["backend"] == "thread"


class TestWorkerBootTelemetry:
    def test_boot_rows_in_healthz(self, server):
        _status, _headers, data = _request(server, "GET", "/healthz")
        rows = json.loads(data)["warm_start"]["boot_rows"]
        assert len(rows) == 1
        row = rows[0]
        assert row["worker"] == 0
        assert row["snapshot_load_s"] >= 0.0
        assert row["boot_s"] > 0.0
        assert row["total_s"] >= row["boot_s"]

    def test_boot_histograms_recorded(self, server):
        for name in (
            "serve.worker_snapshot_load", "serve.worker_boot",
            "serve.worker_warm_start",
        ):
            histogram = server.metrics.find_histogram(name)
            assert histogram is not None, name
            assert histogram.count == 1


# ----------------------------------------------------------------------
# Process backend: byte parity, telemetry merge, update broadcast
# ----------------------------------------------------------------------

class TestProcessBackend:
    @pytest.fixture(scope="class")
    def proc_server(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=2, backend="process", strategy="planned",
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        with instance.run_in_thread():
            yield instance

    def test_healthz_reports_process_backend(self, proc_server):
        status, _headers, data = _request(proc_server, "GET", "/healthz")
        payload = json.loads(data)
        assert status == 200
        assert payload["backend"] == "process"
        assert payload["workers"] == 2
        rows = payload["warm_start"]["boot_rows"]
        assert sorted(row["worker"] for row in rows) == [0, 1]

    def test_explain_byte_parity_with_thread_backend(
        self, proc_server, direct, scenario
    ):
        status, headers, served = _request(
            proc_server, "POST", "/explain", {"query": str(scenario.target)}
        )
        assert status == 200
        expected = encode_body(
            explanation_payload(direct.explain(scenario.target))
        )
        assert served == expected
        assert headers.get("X-Query-Id")

    def test_whynot_byte_parity(self, proc_server, direct, scenario):
        arity = scenario.target.arity
        absent = "{}({})".format(
            scenario.target.predicate,
            ", ".join(f"Absentia{n}" for n in range(arity)),
        )
        status, _headers, served = _request(
            proc_server, "POST", "/whynot", {"query": absent}
        )
        assert status == 200
        expected = encode_body(
            whynot_payload(direct.why_not(parse_fact(absent)))
        )
        assert served == expected

    def test_malformed_body_is_400(self, proc_server):
        connection = http.client.HTTPConnection(
            proc_server.host, proc_server.port, timeout=30
        )
        try:
            connection.request("POST", "/explain", body=b'{"nope": 1}')
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["status"] == "bad_request"
        finally:
            connection.close()

    def test_worker_metrics_merge_into_parent(self, proc_server, scenario):
        _request(
            proc_server, "POST", "/explain", {"query": str(scenario.target)}
        )
        # Session-level counters only exist inside the worker processes;
        # seeing them in the parent registry proves the delta shipping.
        snapshot_doc = proc_server.metrics.registry_snapshot()
        assert any(
            name.startswith(("explain", "session", "serve.worker"))
            for name in snapshot_doc["counters"]
        ) or snapshot_doc["histograms"], snapshot_doc["counters"]
        boot = proc_server.metrics.find_histogram("serve.worker_boot")
        assert boot is not None and boot.count == 2

    def test_worker_flight_records_ingested(self, proc_server, scenario):
        _request(
            proc_server, "POST", "/explain", {"query": str(scenario.target)}
        )
        prefixed = [
            record.query_id
            for record in proc_server.flight.records()
            if record.query_id.startswith("w")
        ]
        assert prefixed, "expected w<i>- prefixed worker flight records"


class TestProcessUpdateBroadcast:
    @pytest.fixture()
    def setup(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=2, backend="process", strategy="planned",
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        service = ExplanationService(llm=None)
        mirror = service.session(
            scenario.application, loads_database(snapshot),
            strategy="planned",
        )
        try:
            with instance.run_in_thread():
                yield instance, mirror
        finally:
            service.shutdown()

    def test_update_broadcasts_to_every_worker(self, setup):
        instance, mirror = setup
        adds = ["Company(Absentia0)", "Own(IrishBank, Absentia0, 0.9)"]
        status, _headers, data = _request(
            instance, "POST", "/update", {"adds": adds}
        )
        assert status == 200
        assert json.loads(data)["mode"] == "incremental"
        mirror.update(adds=[parse_fact(entry) for entry in adds])
        derived = "Control(IrishBank, Absentia0)"
        expected = encode_body(
            explanation_payload(mirror.explain(parse_fact(derived)))
        )
        # Every worker process must serve the post-update state: with 2
        # workers, 4 sequential requests hit both.
        for _ in range(4):
            status, _headers, served = _request(
                instance, "POST", "/explain", {"query": derived}
            )
            assert status == 200
            assert served == expected

    def test_rejected_delta_leaves_every_worker_untouched(
        self, setup, scenario
    ):
        instance, mirror = setup
        status, _headers, data = _request(
            instance, "POST", "/update",
            {"retracts": ["Control(IrishBank, FondoItaliano)"]},
        )
        assert status == 400
        assert "derived" in json.loads(data)["error"]
        expected = encode_body(
            explanation_payload(mirror.explain(scenario.target))
        )
        for _ in range(4):
            status, _headers, served = _request(
                instance, "POST", "/explain", {"query": str(scenario.target)}
            )
            assert status == 200
            assert served == expected


# ----------------------------------------------------------------------
# POST /update racing keep-alive /explain connections
# ----------------------------------------------------------------------

class TestUpdateRacesKeepAlive:
    """The drain lock must neither drop nor reorder in-flight responses:
    every response on a keep-alive connection answers its own request,
    and the pre-to-post-update transition is atomic (no response shows
    pre-update state after one has shown post-update state)."""

    @pytest.fixture()
    def racing(self, scenario, snapshot):
        instance = ExplanationServer(
            scenario.application, snapshot=snapshot,
            config=ServeConfig(
                workers=2, strategy="planned",
                slo_period_s=60.0, slo_interval_requests=10_000,
            ),
            llm=None,
        )
        with instance.run_in_thread():
            yield instance

    def test_update_does_not_drop_or_reorder_responses(
        self, racing, scenario
    ):
        import threading as _threading

        target = str(scenario.target)
        # Pre-update: the target explains (200).  The update retracts
        # the FrenchPLC edge, after which it must 404 as not_derived.
        status, _headers, pre_body = _request(
            racing, "POST", "/explain", {"query": target}
        )
        assert status == 200

        results: dict[int, list] = {}
        errors: list = []
        started = _threading.Barrier(4)

        def client(slot: int) -> None:
            connection = http.client.HTTPConnection(
                racing.host, racing.port, timeout=30
            )
            rows = results.setdefault(slot, [])
            try:
                started.wait(timeout=10)
                for _ in range(10):
                    status, _headers, data = _request(
                        racing, "POST", "/explain", {"query": target},
                        connection=connection,
                    )
                    rows.append((status, data))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)
            finally:
                connection.close()

        threads = [
            _threading.Thread(target=client, args=(slot,))
            for slot in range(3)
        ]
        for thread in threads:
            thread.start()
        started.wait(timeout=10)
        status, _headers, data = _request(
            racing, "POST", "/update",
            {"retracts": ["Own(FrenchPLC, MadridCredit, 0.21)"]},
        )
        assert status == 200
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        for slot, rows in results.items():
            assert len(rows) == 10, f"connection {slot} dropped responses"
            seen_post = False
            for status, data in rows:
                if status == 200:
                    # Pre-update state: exact bytes, and never after a
                    # post-update response on the same ordered connection.
                    assert data == pre_body
                    assert not seen_post, (
                        f"connection {slot} regressed to pre-update state"
                    )
                else:
                    assert status == 404
                    assert json.loads(data)["status"] == "not_derived"
                    seen_post = True
        # The update really landed: fresh requests see post-update state.
        status, _headers, _data = _request(
            racing, "POST", "/explain", {"query": target}
        )
        assert status == 404
