"""Unit tests for the compiled rule kernels (engine/kernels.py)."""

import pytest

from repro.datalog import fact, parse_program
from repro.datalog.terms import Constant, Variable
from repro.engine import (
    Database,
    compile_rule_kernel,
    execute_rule_plan,
    plan_rule,
)


def v(name):
    return Variable(name)


def _rule(text, **kwargs):
    program = parse_program(text, name=kwargs.pop("name", "p"), **kwargs)
    return program.rules[0]


class TestKernelExecution:
    def test_kernel_matches_fresh_compile_path(self):
        """A reused kernel returns exactly what per-call compilation does."""
        rule = _rule("r: E(x, y), E(y, z) -> T(x, z).", goal="T")
        database = Database([
            fact("E", "A", "B"), fact("E", "B", "C"), fact("E", "B", "D"),
        ])
        rule_plan = plan_rule(rule, database)
        kernel = compile_rule_kernel(rule_plan, database)
        fresh = execute_rule_plan(rule_plan, database, frozenset())
        reused = execute_rule_plan(
            rule_plan, database, frozenset(), kernel=kernel
        )
        assert reused == fresh

    def test_kernel_survives_database_growth(self):
        """Closures capture live column/symbol views, so a kernel compiled
        before facts arrive still sees them."""
        rule = _rule("r: E(x, y), E(y, z) -> T(x, z).", goal="T")
        database = Database()
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        database.add(fact("E", "A", "B"))
        database.add(fact("E", "B", "C"))
        matches = kernel.execute(database, frozenset())
        assert [used for _b, used in matches] == [
            (fact("E", "A", "B"), fact("E", "B", "C")),
        ]

    def test_exec_counter_increments(self):
        rule = _rule("r: E(x, y) -> T(x, y).", goal="T")
        database = Database([fact("E", "A", "B")])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        stats = {}
        kernel.execute(database, frozenset(), stats=stats)
        kernel.execute(database, frozenset(), stats=stats)
        assert kernel.execs == 2
        assert stats["kernel_execs"] == 2

    def test_symbol_table_mismatch_rejected(self):
        rule = _rule("r: E(x, y) -> T(x, y).", goal="T")
        ours = Database([fact("E", "A", "B")])
        theirs = Database([fact("E", "A", "B")])
        kernel = compile_rule_kernel(plan_rule(rule, ours), ours)
        with pytest.raises(ValueError):
            kernel.execute(theirs, frozenset())
        with pytest.raises(ValueError):
            execute_rule_plan(
                plan_rule(rule, ours), theirs, frozenset(), kernel=kernel
            )

    def test_bindings_carry_actual_stored_terms(self):
        """Rendered bindings must hold the matched facts' own term
        objects, never the symbol table's canonical spelling."""
        rule = _rule("r: P(x), Q(x) -> R(x).", goal="R")
        # 1 interns first, so Constant(1.0) canonicalizes to Constant(1);
        # the join must still succeed (value-equal ids) and the binding
        # must come from P's stored term.
        database = Database([fact("P", 1.0), fact("Q", 1)])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        matches = kernel.execute(database, frozenset())
        assert len(matches) == 1
        binding, used = matches[0]
        assert binding[v("x")] is used[0].terms[0]
        assert repr(binding[v("x")]) == "Constant(1.0)"


class TestKernelSemantics:
    def test_conditions_prune(self):
        rule = _rule("r: Own(x, y, s), s > 0.5 -> C(x, y).", goal="C")
        database = Database([
            fact("Own", "A", "B", 0.7), fact("Own", "A", "C", 0.3),
        ])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        stats = {}
        matches = kernel.execute(database, frozenset(), stats=stats)
        assert [used for _b, used in matches] == [
            (fact("Own", "A", "B", 0.7),)
        ]
        assert stats["pruned"] == 1

    def test_assignments_recomputed_exactly(self):
        rule = _rule("r: Own(x, y, s), w = s * 2 -> C(x, w).", goal="C")
        database = Database([fact("Own", "A", "B", 0.35)])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        binding, _used = kernel.execute(database, frozenset())[0]
        assert binding[v("w")] == Constant(0.7)
        assert list(binding) == [v("x"), v("y"), v("s"), v("w")]

    def test_evaluation_errors_prune_not_raise(self):
        """Arithmetic on a non-numeric operand prunes the partial (with
        the pruned counter ticking) instead of propagating."""
        rule = _rule("r: P(x, s), w = s * 2 -> C(x, w).", goal="C")
        database = Database([fact("P", "A", "oops"), fact("P", "B", 3)])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        stats = {}
        matches = kernel.execute(database, frozenset(), stats=stats)
        assert [used[0] for _b, used in matches] == [fact("P", "B", 3)]
        assert stats["pruned"] == 1

    def test_negation_blocks_matches(self):
        rule = _rule(
            "r: Node(x), Node(y), not E(x, y) -> Sep(x, y).", goal="Sep"
        )
        database = Database([
            fact("Node", "A"), fact("Node", "B"), fact("E", "A", "B"),
        ])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        matches = kernel.execute(database, frozenset())
        pairs = {(b[v("x")].value, b[v("y")].value) for b, _u in matches}
        assert ("A", "B") not in pairs
        assert ("B", "A") in pairs

    def test_negation_with_constant_probe(self):
        rule = _rule('r: Node(x), not Flag(x, "bad") -> Ok(x).', goal="Ok")
        database = Database([
            fact("Node", "A"), fact("Node", "B"), fact("Flag", "A", "bad"),
        ])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        matches = kernel.execute(database, frozenset())
        assert [b[v("x")].value for b, _u in matches] == ["B"]

    def test_delta_variants_dedup_and_sort(self):
        rule = _rule("r: P(x, y), P(y, z) -> Q(x, z).", goal="Q")
        database = Database([fact("P", "A", "B"), fact("P", "B", "C")])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        delta = {"P": [fact("P", "A", "B"), fact("P", "B", "C")]}
        matches = kernel.execute(database, frozenset(), delta)
        assert len(matches) == 1

    def test_exclude_skips_superseded_facts(self):
        rule = _rule("r: P(x) -> Q(x).", goal="Q")
        database = Database([fact("P", "A"), fact("P", "B")])
        kernel = compile_rule_kernel(plan_rule(rule, database), database)
        matches = kernel.execute(database, frozenset({fact("P", "A")}))
        assert [b[v("x")].value for b, _u in matches] == ["B"]
