"""Shared fixtures: the paper's programs, glossaries and worked instances."""

from __future__ import annotations

import pytest

from repro.apps import close_links, company_control, figures, stress_test
from repro.core import Explainer, StructuralAnalysis, TemplateStore
from repro.engine import reason
from repro.llm import SimulatedLLM


@pytest.fixture(scope="session")
def control_app():
    return company_control.build()


@pytest.fixture(scope="session")
def stress_app():
    return stress_test.build()


@pytest.fixture(scope="session")
def stress_simple_app():
    return stress_test.build_simple()


@pytest.fixture(scope="session")
def close_links_app():
    return close_links.build()


@pytest.fixture(scope="session")
def figure8():
    """Example 4.3 / Figure 8 scenario, already materialized."""
    scenario = figures.figure8_instance()
    return scenario, scenario.run()


@pytest.fixture(scope="session")
def figure15():
    scenario = figures.figure15_instance()
    return scenario, scenario.run()


@pytest.fixture(scope="session")
def figure12_stress():
    scenario = figures.figure12_stress_instance()
    return scenario, scenario.run()


@pytest.fixture(scope="session")
def figure8_explainer(figure8):
    scenario, result = figure8
    return Explainer(result, scenario.application.glossary)


@pytest.fixture(scope="session")
def stress_simple_analysis(stress_simple_app):
    return StructuralAnalysis(stress_simple_app.program)


@pytest.fixture(scope="session")
def control_analysis(control_app):
    return StructuralAnalysis(control_app.program)


@pytest.fixture(scope="session")
def stress_analysis(stress_app):
    return StructuralAnalysis(stress_app.program)


@pytest.fixture(scope="session")
def stress_simple_store(stress_simple_analysis, stress_simple_app):
    return TemplateStore(stress_simple_analysis, stress_simple_app.glossary)


@pytest.fixture()
def faithful_llm():
    return SimulatedLLM(seed=11, faithful=True)


@pytest.fixture()
def lossy_llm():
    return SimulatedLLM(seed=11, faithful=False)
