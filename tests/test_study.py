"""Tests for the simulated user studies (§6.1, §6.2) and statistics."""

import random

import pytest

from repro.llm import SimulatedLLM
from repro.study import (
    METHODS,
    SimulatedParticipant,
    build_question,
    likert_summary,
    run_comprehension_study,
    run_expert_study,
    study_cases,
    wilcoxon_signed_rank,
)
from repro.study.comprehension import fact_support, split_clauses
from repro.study.experts import base_quality, expert_scenarios, text_features
from repro.datalog.atoms import fact


class TestFactSupport:
    CLAUSES = split_clauses(
        "Since A owns 0.6 shares of B, and 0.6 is higher than 0.5, "
        "then A exercises control over B. Since A exercises control over "
        "B and C, and B and C owns 0.3 and 0.25 shares of T, then A "
        "exercises control over T."
    )

    def test_supported_fact_scores_high(self):
        assert fact_support(fact("Own", "A", "B", 0.6), self.CLAUSES) >= 1.0

    def test_wrong_value_scores_low(self):
        assert fact_support(fact("Own", "A", "B", 0.9), self.CLAUSES) < 0.7

    def test_misaligned_enumeration_penalized(self):
        aligned = fact_support(fact("Own", "B", "T", 0.3), self.CLAUSES)
        misaligned = fact_support(fact("Own", "B", "T", 0.25), self.CLAUSES)
        assert aligned > misaligned

    def test_constantless_fact_neutral(self):
        assert fact_support(fact("Marker", 0), ["no numbers"]) < 1.0


class TestQuestionConstruction:
    def test_three_choices_one_correct(self):
        rng = random.Random(0)
        scenario = study_cases(0)[0]
        question = build_question(1, scenario, rng)
        assert len(question.choices) == 3
        corrects = [c for c in question.choices if c.is_correct]
        assert len(corrects) == 1
        assert question.choices[question.correct_index].is_correct

    def test_wrong_choices_have_archetypes(self):
        rng = random.Random(0)
        scenario = study_cases(0)[2]
        question = build_question(3, scenario, rng)
        archetypes = [
            question.archetype_of(i)
            for i in range(3) if i != question.correct_index
        ]
        assert all(archetype is not None for archetype in archetypes)

    def test_question_text_is_explanation(self):
        rng = random.Random(0)
        scenario = study_cases(0)[1]
        question = build_question(2, scenario, rng)
        assert len(question.text) > 50


class TestComprehensionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_comprehension_study(participants=24, seed=0)

    def test_five_cases(self, study):
        assert len(study.cases) == 5

    def test_answer_counts(self, study):
        assert all(case.answers == 24 for case in study.cases)

    def test_overall_accuracy_in_paper_band(self, study):
        """Paper: 96% overall.  The simulation must land in a high band."""
        assert 0.88 <= study.overall_accuracy <= 1.0

    def test_no_dominant_error_archetype(self, study):
        """Paper: 'no clear pattern can be identified'."""
        from repro.study import ErrorArchetype

        totals = {archetype: 0 for archetype in ErrorArchetype}
        for case in study.cases:
            for archetype, count in case.errors.items():
                totals[archetype] += count
        assert all(count <= 6 for count in totals.values())

    def test_table_rows_shape(self, study):
        rows = study.table_rows()
        assert len(rows) == 5
        assert set(rows[0]) == {
            "case", "wrong edge", "wrong value", "incorrect aggregation",
            "incorrect chain", "correct answers",
        }

    def test_attentive_participant_always_right(self):
        rng = random.Random(0)
        scenario = study_cases(0)[2]
        question = build_question(3, scenario, rng)
        perfect = SimulatedParticipant(
            rng=random.Random(1), perception_noise=0.0, attention_lapse=0.0
        )
        assert perfect.answer(question) == question.correct_index


class TestExpertStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_expert_study(SimulatedLLM(seed=7), raters=14, seed=0)

    def test_168_data_points(self, study):
        assert study.data_points() == 168

    def test_means_in_paper_band(self, study):
        """Paper: 3.78 / 3.765 / 3.69 — all methods in the same band."""
        for method in METHODS:
            assert 3.2 <= study.mean(method) <= 4.2

    def test_template_has_lowest_variance(self, study):
        """Paper Figure 16: templates' std (0.94) below both baselines."""
        assert study.std("template") <= study.std("paraphrase") + 0.05
        assert study.std("template") <= study.std("summary") + 0.05

    def test_no_significant_difference(self, study):
        """The paper's headline: Wilcoxon p-values far from significance."""
        p1 = wilcoxon_signed_rank(
            study.ratings["paraphrase"], study.ratings["template"]
        )
        p2 = wilcoxon_signed_rank(
            study.ratings["summary"], study.ratings["template"]
        )
        assert p1 > 0.05
        assert p2 > 0.05

    def test_four_scenarios(self):
        assert len(expert_scenarios(0)) == 4


class TestQualityModel:
    def test_deterministic_text_scores_low(self):
        rigid = (
            "Since A owns B, then A controls B. Since A controls B, "
            "then A is linked to B."
        )
        fluent = (
            "A owns B and therefore controls it. Through that control, "
            "the two are linked."
        )
        assert base_quality(fluent) > base_quality(rigid)

    def test_features_counts(self):
        features = text_features("Since A, then B. Because C, D happened.")
        assert features.sentences == 2
        assert features.since_rate == 0.5


class TestStats:
    def test_likert_summary(self):
        summary = likert_summary([3, 4, 5, 4])
        assert summary.mean == 4.0
        assert summary.count == 4
        assert summary.std > 0

    def test_likert_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            likert_summary([])

    def test_wilcoxon_identical_samples(self):
        assert wilcoxon_signed_rank([3, 4, 5], [3, 4, 5]) == 1.0

    def test_wilcoxon_detects_shift(self):
        first = [1, 1, 2, 1, 2, 1, 2, 1, 1, 2, 1, 2]
        second = [4, 5, 5, 4, 5, 4, 5, 5, 4, 4, 5, 4]
        assert wilcoxon_signed_rank(first, second) < 0.05

    def test_wilcoxon_requires_paired(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1, 2, 3])

    def test_wilcoxon_symmetric(self):
        first = [3, 4, 2, 5, 4, 3, 4, 2]
        second = [4, 3, 3, 4, 5, 3, 3, 3]
        assert wilcoxon_signed_rank(first, second) == pytest.approx(
            wilcoxon_signed_rank(second, first)
        )


class TestComprehensionWithEnhancedTexts:
    def test_fluent_reports_equally_comprehensible(self):
        """The paper's participants read the system's fluent reports; the
        accuracy regime must hold for enhanced texts too, not just for the
        deterministic verbalization."""
        from repro.llm import SimulatedLLM

        study = run_comprehension_study(
            participants=24, seed=0, llm=SimulatedLLM(seed=1, faithful=True)
        )
        assert study.overall_accuracy >= 0.90
