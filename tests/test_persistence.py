"""Tests for glossary drafting and template-store persistence."""

import json

import pytest

from repro.core import StructuralAnalysis, TemplateStore
from repro.core.enhancer import TemplateEnhancer
from repro.core.glossary import draft_glossary
from repro.core.templates import TemplateError
from repro.datalog import parse_program
from repro.llm import SimulatedLLM


class TestGlossaryDrafting:
    PROGRAM = parse_program(
        """
        r1: LongTermDebts(d, c, v) -> HasExposure(c).
        r2: Shock(f) -> Hit(f).
        """,
        name="draft-me", goal="HasExposure",
    )

    def test_covers_whole_schema(self):
        glossary = draft_glossary(self.PROGRAM)
        glossary.validate_against(self.PROGRAM)

    def test_camel_case_split(self):
        glossary = draft_glossary(self.PROGRAM)
        assert "'long term debts'" in glossary.entry("LongTermDebts").text

    def test_unary_phrasing(self):
        glossary = draft_glossary(self.PROGRAM)
        assert glossary.entry("Shock").text == "<a1> satisfies 'shock'"

    def test_drafted_glossary_drives_the_pipeline(self):
        from repro.core import Explainer
        from repro.datalog import fact
        from repro.engine import reason

        result = reason(self.PROGRAM, [fact("LongTermDebts", "A", "B", 7)])
        explainer = Explainer(result, draft_glossary(self.PROGRAM))
        explanation = explainer.explain(
            fact("HasExposure", "B"), prefer_enhanced=False
        )
        assert "long term debts" in explanation.text


class TestTemplatePersistence:
    @pytest.fixture()
    def enhanced_store(self, stress_simple_analysis, stress_simple_app):
        store = TemplateStore(stress_simple_analysis, stress_simple_app.glossary)
        TemplateEnhancer(SimulatedLLM(seed=4, faithful=True)).enhance_store(store)
        store.approve_all()
        return store

    def test_roundtrip(self, enhanced_store, stress_simple_analysis,
                       stress_simple_app):
        payload = enhanced_store.export_state()
        # JSON-serializable
        payload = json.loads(json.dumps(payload))
        fresh = TemplateStore(stress_simple_analysis, stress_simple_app.glossary)
        accepted = fresh.import_state(payload)
        assert accepted == len(fresh)
        for original, restored in zip(
            enhanced_store.templates(), fresh.templates()
        ):
            assert restored.enhanced_texts == original.enhanced_texts
            assert restored.approved

    def test_wrong_program_rejected(self, enhanced_store, control_analysis,
                                    control_app):
        payload = enhanced_store.export_state()
        other = TemplateStore(control_analysis, control_app.glossary)
        with pytest.raises(TemplateError):
            other.import_state(payload)

    def test_stale_export_cannot_smuggle_omissions(
        self, enhanced_store, stress_simple_analysis, stress_simple_app
    ):
        """An enhanced text missing tokens (e.g. after a rule change made
        the deterministic template richer) is silently dropped on import."""
        payload = enhanced_store.export_state()
        payload["templates"][0]["enhanced"] = ["all tokens are gone"]
        fresh = TemplateStore(stress_simple_analysis, stress_simple_app.glossary)
        accepted = fresh.import_state(payload)
        assert accepted == len(fresh) - 1
        first_key_name = payload["templates"][0]["path"]
        damaged = [
            t for t in fresh.templates() if t.path.name == first_key_name
        ]
        assert any(t.enhanced_texts == [] for t in damaged)

    def test_unknown_paths_ignored(self, enhanced_store,
                                   stress_simple_analysis, stress_simple_app):
        payload = enhanced_store.export_state()
        payload["templates"].append({
            "path": "PiGhost", "multi_rules": [], "enhanced": ["x"],
            "approved": True,
        })
        fresh = TemplateStore(stress_simple_analysis, stress_simple_app.glossary)
        fresh.import_state(payload)  # must not raise
