"""Additional simulated-LLM coverage: profile overrides, rewriting
robustness, guard interplay."""

import random

from repro.core.validation import completeness_ratio
from repro.llm import (
    OmissionProfile,
    PARAPHRASE_PROMPT,
    PromptKind,
    REPHRASE_PROMPT,
    RewritingEngine,
    SUMMARY_PROMPT,
    SimulatedLLM,
)


class TestProfileOverrides:
    def test_custom_profile_changes_loss(self):
        text = " ".join(
            f"Since E{i} owes {i + 3} to E{i + 1}, then E{i + 1} is at risk."
            for i in range(15)
        )
        constants = [str(i + 3) for i in range(15)]
        heavy = OmissionProfile(base=0.9, slope=0, cap=0.9, entity_factor=0.9)
        light = OmissionProfile(base=0.0, slope=0, cap=0.0, entity_factor=0.0)

        def mean_loss(profile, trials=10):
            total = 0.0
            for trial in range(trials):
                llm = SimulatedLLM(
                    seed=trial, profiles={PromptKind.PARAPHRASE: profile}
                )
                output = llm.complete(PARAPHRASE_PROMPT + text)
                total += 1 - completeness_ratio(output, constants)
            return total / trials

        assert mean_loss(light) == 0.0
        assert mean_loss(heavy) > 0.5

    def test_override_is_per_kind(self):
        heavy = OmissionProfile(base=0.95, slope=0, cap=0.95, entity_factor=0.95)
        llm = SimulatedLLM(seed=1, profiles={PromptKind.SUMMARY: heavy})
        # Paraphrase keeps its default (mild at this length).
        output = llm.complete(PARAPHRASE_PROMPT + "Since A owes 7 to B, then B is at risk.")
        assert completeness_ratio(output, ["A", "B", "7"]) == 1.0


class TestRewritingRobustness:
    def test_empty_text(self):
        engine = RewritingEngine(random.Random(0))
        assert engine.paraphrase("") == ""
        assert engine.summarize("") == ""

    def test_non_canonical_prose_passthrough(self):
        engine = RewritingEngine(random.Random(0))
        prose = "This is ordinary prose. It has no rule structure."
        assert engine.paraphrase(prose) == prose

    def test_mixed_canonical_and_prose(self):
        engine = RewritingEngine(random.Random(0))
        text = "Preamble sentence. Since A owes 7 to B, then B is at risk."
        output = engine.paraphrase(text)
        assert "Preamble sentence." in output
        assert "Since A owes 7" not in output  # the canonical part reframed

    def test_tokens_survive_rephrase(self):
        llm = SimulatedLLM(seed=2, faithful=True)
        template = (
            "Since <f> is a financial institution with capital of <p1>, "
            "and <s> is higher than <p1>, then <f> is in default."
        )
        output = llm.complete(REPHRASE_PROMPT + template)
        for token in ("<f>", "<p1>", "<s>"):
            assert token in output

    def test_summary_never_longer_than_paraphrase_on_redundant_text(self):
        text = " ".join(
            f"Since A{i} is in default, and A{i} has an amount 5 of debts "
            f"with B{i}, then B{i} is at risk."
            for i in range(6)
        )
        engine_a = RewritingEngine(random.Random(3))
        engine_b = RewritingEngine(random.Random(3))
        assert len(engine_b.summarize(text)) <= len(engine_a.paraphrase(text)) * 1.1


class TestUsageAccounting:
    def test_kinds_counted_separately(self):
        llm = SimulatedLLM(seed=0)
        llm.complete(PARAPHRASE_PROMPT + "x.")
        llm.complete(SUMMARY_PROMPT + "x.")
        llm.complete(SUMMARY_PROMPT + "x.")
        llm.complete("free-form question")
        assert llm.usage.by_kind == {
            "paraphrase": 1, "summary": 2, "unknown": 1,
        }
        assert llm.usage.calls == 4
