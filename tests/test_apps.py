"""Tests for the financial KG applications — paper Section 5."""

import pytest

from repro.apps import close_links, company_control, stress_test
from repro.datalog.atoms import fact
from repro.engine import reason


class TestCompanyControl:
    def test_direct_majority_control(self, control_app):
        result = control_app.reason([company_control.own("A", "B", 0.6)])
        assert fact("Control", "A", "B") in result.answers()

    def test_minority_stake_no_control(self, control_app):
        result = control_app.reason([company_control.own("A", "B", 0.4)])
        assert fact("Control", "A", "B") not in result.answers()

    def test_exactly_half_is_not_control(self, control_app):
        result = control_app.reason([company_control.own("A", "B", 0.5)])
        assert result.answers() == ()

    def test_auto_control_for_companies(self, control_app):
        result = control_app.reason([company_control.company("A")])
        assert result.answers() == (fact("Control", "A", "A"),)

    def test_indirect_control_chain(self, control_app):
        result = control_app.reason([
            company_control.own("A", "B", 0.7),
            company_control.own("B", "C", 0.6),
        ])
        assert fact("Control", "A", "C") in result.answers()

    def test_joint_control_through_subsidiaries(self, control_app):
        """The official definition's clause (ii): jointly summed shares."""
        result = control_app.reason([
            company_control.own("H", "S1", 0.8),
            company_control.own("H", "S2", 0.9),
            company_control.own("S1", "T", 0.3),
            company_control.own("S2", "T", 0.25),
        ])
        assert fact("Control", "H", "T") in result.answers()

    def test_joint_control_with_own_direct_stake(self, control_app):
        """'possibly together with x': the controller's own shares count
        through the σ2 auto-control."""
        result = control_app.reason([
            company_control.company("H"),
            company_control.own("H", "S", 0.6),
            company_control.own("H", "T", 0.3),
            company_control.own("S", "T", 0.25),
        ])
        assert fact("Control", "H", "T") in result.answers()

    def test_jointly_insufficient_shares(self, control_app):
        result = control_app.reason([
            company_control.own("H", "S1", 0.8),
            company_control.own("S1", "T", 0.3),
        ])
        assert fact("Control", "H", "T") not in result.answers()

    def test_share_bounds_validated(self):
        with pytest.raises(ValueError):
            company_control.own("A", "B", 1.5)
        with pytest.raises(ValueError):
            company_control.own("A", "B", 0)


class TestStressTestSimple:
    def test_shock_below_capital_no_default(self, stress_simple_app):
        result = stress_simple_app.reason([
            stress_test.shock("A", 3), stress_test.has_capital("A", 5),
        ])
        assert result.answers() == ()

    def test_shock_above_capital_defaults(self, stress_simple_app):
        result = stress_simple_app.reason([
            stress_test.shock("A", 6), stress_test.has_capital("A", 5),
        ])
        assert result.answers() == (fact("Default", "A"),)

    def test_cascade_stops_at_sufficient_capital(self, stress_simple_app):
        result = stress_simple_app.reason([
            stress_test.shock("A", 6), stress_test.has_capital("A", 5),
            stress_test.debt("A", "B", 7), stress_test.has_capital("B", 9),
        ])
        assert fact("Default", "B") not in result.answers()
        assert fact("Risk", "B", 7) in result.database

    def test_figure8_defaults(self, figure8):
        __, result = figure8
        assert set(result.answers()) == {
            fact("Default", "A"), fact("Default", "B"), fact("Default", "C"),
        }


class TestStressTestFull:
    def test_two_channels_accumulate(self, stress_app):
        """Neither channel alone sinks F; both together do (σ7 sums over
        the channel dimension)."""
        result = stress_app.reason([
            stress_test.shock("A", 10), stress_test.has_capital("A", 5),
            stress_test.has_capital("F", 9),
            stress_test.long_term_debt("A", "F", 6),
            stress_test.short_term_debt("A", "F", 5),
        ])
        assert fact("Default", "F") in result.answers()
        assert fact("Risk", "F", 6, "long") in result.database
        assert fact("Risk", "F", 5, "short") in result.database

    def test_single_channel_insufficient(self, stress_app):
        result = stress_app.reason([
            stress_test.shock("A", 10), stress_test.has_capital("A", 5),
            stress_test.has_capital("F", 9),
            stress_test.long_term_debt("A", "F", 6),
        ])
        assert fact("Default", "F") not in result.answers()

    def test_figure12_cascade(self, figure12_stress):
        """Figures 12/13: A, B, C and F all default."""
        __, result = figure12_stress
        assert set(result.answers()) == {
            fact("Default", "A"), fact("Default", "B"),
            fact("Default", "C"), fact("Default", "F"),
        }

    def test_exposure_equal_to_capital_survives(self, stress_app):
        result = stress_app.reason([
            stress_test.shock("A", 10), stress_test.has_capital("A", 5),
            stress_test.has_capital("F", 6),
            stress_test.long_term_debt("A", "F", 6),
        ])
        assert fact("Default", "F") not in result.answers()


class TestCloseLinks:
    def test_participation_link(self, close_links_app):
        """CRR case (a): a 20% participation creates a close link."""
        result = close_links_app.reason([close_links.own("A", "B", 0.2)])
        assert fact("CloseLink", "A", "B") in result.answers()

    def test_below_threshold_no_link(self, close_links_app):
        result = close_links_app.reason([close_links.own("A", "B", 0.19)])
        assert result.answers() == ()

    def test_control_link(self, close_links_app):
        """CRR case (b): control implies a close link."""
        result = close_links_app.reason([
            close_links.own("A", "B", 0.7), close_links.own("B", "C", 0.6),
        ])
        assert fact("CloseLink", "A", "C") in result.answers()

    def test_common_controller_link(self, close_links_app):
        """CRR case (c): both controlled by the same third party."""
        result = close_links_app.reason([
            close_links.own("H", "A", 0.7),
            close_links.own("H", "B", 0.8),
        ])
        answers = set(result.answers())
        assert fact("CloseLink", "A", "B") in answers
        assert fact("CloseLink", "B", "A") in answers

    def test_no_self_links(self, close_links_app):
        result = close_links_app.reason([
            close_links.own("H", "A", 0.7),
            close_links.company("H"),
        ])
        assert fact("CloseLink", "A", "A") not in result.answers()
        assert fact("CloseLink", "H", "H") not in result.answers()


class TestApplicationBundles:
    def test_glossaries_validated_at_build(self):
        # KGApplication.__post_init__ validates; building must not raise.
        for builder in (
            company_control.build, stress_test.build,
            stress_test.build_simple, close_links.build,
        ):
            application = builder()
            assert application.program.goal is not None

    def test_analyse_shortcut(self, control_app):
        analysis = control_app.analyse()
        assert analysis.program is control_app.program


class TestApplicationExplainerShortcut:
    def test_explainer_wired_to_glossary(self, stress_simple_app):
        from repro.datalog.atoms import fact

        result = stress_simple_app.reason([
            fact("Shock", "A", 6), fact("HasCapital", "A", 5),
        ])
        explainer = stress_simple_app.explainer(result)
        explanation = explainer.explain(fact("Default", "A"))
        assert "A" in explanation.constants()
