"""Tests for DOT export and terminal rendering."""

from repro.datalog.depgraph import DependencyGraph
from repro.render import (
    chase_graph_dot,
    dependency_graph_dot,
    financial_network_dot,
    format_boxplot_series,
    format_percent,
    format_table,
)


class TestDependencyGraphDot:
    def test_valid_digraph(self, stress_simple_app):
        dot = dependency_graph_dot(DependencyGraph(stress_simple_app.program))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_extensional_nodes_are_boxes(self, stress_simple_app):
        dot = dependency_graph_dot(DependencyGraph(stress_simple_app.program))
        assert '"Shock" [shape=box];' in dot
        assert '"Default" [shape=ellipse];' in dot

    def test_edges_carry_greek_labels(self, stress_simple_app):
        dot = dependency_graph_dot(DependencyGraph(stress_simple_app.program))
        assert '"Shock" -> "Default" [label="α"];' in dot


class TestChaseGraphDot:
    def test_fact_nodes_present(self, figure8):
        __, result = figure8
        dot = chase_graph_dot(result.graph)
        assert '"Default(C)"' in dot
        assert '"Risk(C, 11)"' in dot

    def test_derivation_edges_labelled(self, figure8):
        __, result = figure8
        dot = chase_graph_dot(result.graph)
        assert '"Risk(C, 11)" -> "Default(C)" [label="γ"];' in dot

    def test_edb_facts_are_boxes(self, figure8):
        __, result = figure8
        dot = chase_graph_dot(result.graph)
        assert '"Shock(A, 6)" [shape=box];' in dot


class TestFinancialNetworkDot:
    def test_edges_and_annotations(self, figure12_stress):
        scenario, __ = figure12_stress
        dot = financial_network_dot(scenario.database)
        assert '"A" -> "B"' in dot
        assert "HasCapital" in dot
        assert "Shock" in dot


class TestTables:
    def test_alignment(self):
        table = format_table(["name", "value"], [["alpha", 1], ["b", 22.5]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title(self):
        table = format_table(["a"], [[1]], title="Figure 14")
        assert table.startswith("Figure 14")

    def test_float_formatting(self):
        table = format_table(["x"], [[0.5]])
        assert "0.5" in table

    def test_percent(self):
        assert format_percent(0.9583) == "96%"
        assert format_percent(1.0) == "100%"


class TestBoxplots:
    def test_series_shape(self):
        series = format_boxplot_series(
            "omissions",
            [(3, (0.1, 0.2, 0.3)), (6, (0.2, 0.3, 0.5))],
        )
        lines = series.splitlines()
        assert len(lines) == 3
        assert "median 0.200" in lines[1]
        assert "[" in lines[1] and "]" in lines[1]

    def test_zero_maximum_handled(self):
        series = format_boxplot_series("flat", [(1, (0.0, 0.0, 0.0))])
        assert "median 0.000" in series
