"""Property-based tests on the study harness: corruption invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import Fact, fact
from repro.study.archetypes import (
    ALL_ARCHETYPES,
    CorruptionError,
    corrupt,
)

entity_names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta", "Epsilon"])


@st.composite
def ownership_graphs(draw) -> frozenset[Fact]:
    edge_count = draw(st.integers(min_value=2, max_value=8))
    facts: set[Fact] = set()
    for index in range(edge_count):
        owner = draw(entity_names)
        owned = draw(entity_names.filter(lambda n: True))
        if owner == owned:
            continue
        share = round(0.05 + 0.05 * draw(st.integers(0, 18)), 2)
        facts.add(fact("Own", owner, owned, share))
    if len(facts) < 2:
        facts.add(fact("Own", "Alpha", "Beta", 0.6))
        facts.add(fact("Own", "Beta", "Gamma", 0.4))
    return frozenset(facts)


class TestCorruptionInvariants:
    @settings(deadline=None, max_examples=40)
    @given(ownership_graphs(), st.integers(0, 10_000))
    def test_corruptions_preserve_cardinality_and_differ(self, graph, seed):
        rng = random.Random(seed)
        for archetype in ALL_ARCHETYPES:
            try:
                corrupted = corrupt(graph, archetype, rng)
            except CorruptionError:
                continue
            assert len(corrupted.facts) == len(graph)
            assert corrupted.facts != graph
            assert corrupted.archetype is archetype
            assert corrupted.note

    @settings(deadline=None, max_examples=40)
    @given(ownership_graphs(), st.integers(0, 10_000))
    def test_corruptions_keep_the_schema(self, graph, seed):
        rng = random.Random(seed)
        predicates = {f.predicate for f in graph}
        for archetype in ALL_ARCHETYPES:
            try:
                corrupted = corrupt(graph, archetype, rng)
            except CorruptionError:
                continue
            assert {f.predicate for f in corrupted.facts} <= predicates
            for current in corrupted.facts:
                assert current.is_fact()

    @settings(deadline=None, max_examples=30)
    @given(ownership_graphs(), st.integers(0, 10_000))
    def test_corruption_determinism(self, graph, seed):
        for archetype in ALL_ARCHETYPES:
            try:
                first = corrupt(graph, archetype, random.Random(seed))
                second = corrupt(graph, archetype, random.Random(seed))
            except CorruptionError:
                continue
            assert first.facts == second.facts
