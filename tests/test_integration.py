"""Cross-module integration tests: full pipeline over all applications."""

import pytest

from repro.apps import close_links, company_control, generators, stress_test
from repro.core import (
    Explainer,
    StructuralAnalysis,
    TemplateStore,
    completeness_ratio,
    omission_ratio,
)
from repro.core.enhancer import TemplateEnhancer
from repro.datalog.atoms import fact
from repro.engine import reason
from repro.llm import PARAPHRASE_PROMPT, SUMMARY_PROMPT, SimulatedLLM


class TestFullPipelinePerApplication:
    """Program text → chase → analysis → templates → explanation."""

    @pytest.mark.parametrize("builder,scenario_builder", [
        (company_control.build, lambda: generators.control_chain(5, seed=0)),
        (stress_test.build, lambda: generators.stress_cascade(3, seed=0)),
        (
            close_links.build,
            lambda: generators.close_links_common_control(seed=0),
        ),
    ])
    def test_pipeline(self, builder, scenario_builder):
        scenario = scenario_builder()
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target)
        assert explanation.text
        assert omission_ratio(
            explanation.text, explainer.proof_constants(scenario.target)
        ) == 0.0


class TestEveryDerivedFactExplainable:
    """The pipeline must answer Q_e for *any* derived fact, not only the
    scenario target (the analysts' interactive use case)."""

    def test_all_control_facts(self):
        scenario = generators.control_chain(6, seed=3)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        for derived in result.derived():
            explanation = explainer.explain(derived, prefer_enhanced=False)
            assert explanation.text
            constants = explainer.proof_constants(derived)
            assert completeness_ratio(explanation.text, constants) == 1.0

    def test_all_stress_facts(self, figure12_stress):
        scenario, result = figure12_stress
        explainer = Explainer(result, scenario.application.glossary)
        for derived in result.derived():
            if derived in result.chase_result.superseded:
                continue
            explanation = explainer.explain(derived, prefer_enhanced=False)
            constants = explainer.proof_constants(derived)
            assert completeness_ratio(explanation.text, constants) == 1.0

    def test_all_close_link_facts(self):
        scenario = generators.close_links_common_control(seed=2)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        for derived in result.derived():
            assert explainer.explain(derived, prefer_enhanced=False).text


class TestTemplatesVersusLLMBaselines:
    """The paper's core comparison, end to end (Sections 6.2–6.3)."""

    def test_templates_complete_where_llm_omits(self):
        scenario = generators.control_with_steps(15, seed=1)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        constants = explainer.proof_constants(scenario.target)
        deterministic = explainer.deterministic_explanation(scenario.target)

        template_text = explainer.explain(scenario.target).text
        assert omission_ratio(template_text, constants) == 0.0

        llm = SimulatedLLM(seed=5)
        omitted = [
            omission_ratio(llm.complete(SUMMARY_PROMPT + deterministic), constants)
            for _ in range(5)
        ]
        assert max(omitted) > 0.0

    def test_paraphrase_loses_less_than_summary(self):
        scenario = generators.control_with_steps(18, seed=2)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        constants = explainer.proof_constants(scenario.target)
        deterministic = explainer.deterministic_explanation(scenario.target)
        llm = SimulatedLLM(seed=0)
        trials = 12
        paraphrase_loss = sum(
            omission_ratio(llm.complete(PARAPHRASE_PROMPT + deterministic), constants)
            for _ in range(trials)
        )
        summary_loss = sum(
            omission_ratio(llm.complete(SUMMARY_PROMPT + deterministic), constants)
            for _ in range(trials)
        )
        assert paraphrase_loss < summary_loss


class TestGuardInPipeline:
    def test_lossy_llm_cannot_corrupt_explanations(self):
        """Even with an unreliable LLM, explanations built from guarded
        templates never lose constants (Section 4.4)."""
        scenario = generators.stress_cascade(2, seed=4)
        result = scenario.run()
        lossy = SimulatedLLM(seed=13, faithful=False)
        explainer = Explainer(result, scenario.application.glossary, llm=lossy)
        explanation = explainer.explain(scenario.target, prefer_enhanced=True)
        constants = explainer.proof_constants(scenario.target)
        assert omission_ratio(explanation.text, constants) == 0.0


class TestDatabaseIndependence:
    """§6.5: 'our approach is database-independent and directly applicable
    to any new application' — verify on a non-financial program."""

    SUPPLY_CHAIN = """
    delta1: Supplies(x, y, q), q > 10 -> DependsOn(y, x).
    delta2: DependsOn(y, x), Outage(x) -> AtRisk(y).
    delta3: AtRisk(y), Supplies(y, z, q), q > 10 -> AtRisk(z).
    """

    def test_new_domain_program(self):
        from repro.core import DomainGlossary
        from repro.datalog import parse_program

        program = parse_program(self.SUPPLY_CHAIN, name="supply", goal="AtRisk")
        glossary = DomainGlossary()
        glossary.define(
            "Supplies", ["x", "y", "q"],
            "<x> supplies <q> units to <y>",
        )
        glossary.define("DependsOn", ["y", "x"], "<y> depends on <x>")
        glossary.define("Outage", ["x"], "<x> suffers an outage")
        glossary.define("AtRisk", ["y"], "<y> is at operational risk")
        facts = [
            fact("Supplies", "Mine", "Smelter", 40),
            fact("Supplies", "Smelter", "Factory", 25),
            fact("Outage", "Mine"),
        ]
        result = reason(program, facts)
        explainer = Explainer(result, glossary)
        explanation = explainer.explain(fact("AtRisk", "Factory"))
        assert "Factory" in explanation.text
        constants = explainer.proof_constants(fact("AtRisk", "Factory"))
        assert completeness_ratio(explanation.text, constants) == 1.0

    def test_new_domain_enhancement_also_works(self):
        from repro.core import DomainGlossary
        from repro.datalog import parse_program

        program = parse_program(self.SUPPLY_CHAIN, name="supply", goal="AtRisk")
        glossary = DomainGlossary()
        glossary.define("Supplies", ["x", "y", "q"], "<x> supplies <q> units to <y>")
        glossary.define("DependsOn", ["y", "x"], "<y> depends on <x>")
        glossary.define("Outage", ["x"], "<x> suffers an outage")
        glossary.define("AtRisk", ["y"], "<y> is at operational risk")
        analysis = StructuralAnalysis(program)
        store = TemplateStore(analysis, glossary)
        report = TemplateEnhancer(SimulatedLLM(seed=1, faithful=True)).enhance_store(store)
        assert report.enhanced == len(store)
