"""System-level properties: completeness over random instances, and the
interactive drill-down API."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import company_control, generators, stress_test
from repro.core import Explainer, completeness_ratio
from repro.datalog.atoms import fact


class TestWhyDrillDown:
    def test_single_step_sentence(self, figure8):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary)
        sentence = explainer.why(fact("Risk", "C", 11))
        assert sentence.startswith("Since ")
        assert "sum of 2 and 9" in sentence
        # One step only: the shock story is not included.
        assert "shock" not in sentence

    def test_why_of_edb_fact_raises(self, figure8):
        import pytest

        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary)
        with pytest.raises(KeyError):
            explainer.why(fact("Shock", "A", 6))


class TestRandomInstanceCompleteness:
    """The paper's central guarantee, as a property over random data:
    every explanation carries every proof constant."""

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_ownership_networks(self, seed):
        application = company_control.build()
        database = generators.random_ownership_database(
            entities=6, edges=10, seed=seed, include_companies=False
        )
        result = application.reason(database)
        explainer = Explainer(result, application.glossary)
        for derived in result.derived()[:12]:
            if derived in result.chase_result.superseded:
                continue
            explanation = explainer.explain(derived, prefer_enhanced=False)
            constants = explainer.proof_constants(derived)
            assert completeness_ratio(explanation.text, constants) == 1.0

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_debt_networks(self, seed):
        application = stress_test.build()
        database = generators.random_debt_database(
            entities=6, edges=9, shocked=2, seed=seed
        )
        result = application.reason(database)
        explainer = Explainer(result, application.glossary)
        for derived in result.answers():
            if not result.chase_result.is_derived(derived):
                continue
            explanation = explainer.explain(derived, prefer_enhanced=False)
            constants = explainer.proof_constants(derived)
            assert completeness_ratio(explanation.text, constants) == 1.0

    @settings(deadline=None, max_examples=10)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    def test_enhanced_explanations_also_complete(self, hops, seed):
        from repro.llm import SimulatedLLM

        scenario = generators.stress_cascade(hops, seed=seed, debts_per_hop=2)
        result = scenario.run()
        explainer = Explainer(
            result, scenario.application.glossary,
            llm=SimulatedLLM(seed=seed, faithful=True),
        )
        explanation = explainer.explain(scenario.target)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0


class TestLongProofs:
    def test_sixty_step_chain_explained(self):
        """Long control chains (deep recursion in provenance and mapping)
        stay correct and fast."""
        import time

        scenario = generators.control_with_steps(60, seed=0)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        started = time.perf_counter()
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        elapsed = time.perf_counter() - started
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0
        assert len(explanation.segments) == 59  # {σ1,σ3} + 58 × {σ3}
        assert elapsed < 5.0

    def test_thirty_hop_cascade_explained(self):
        scenario = generators.stress_cascade(30, seed=0)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0
