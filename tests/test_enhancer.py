"""Unit tests for LLM template enhancement and the token guard (§4.4)."""

import pytest

from repro.core.enhancer import (
    ENHANCEMENT_PROMPT,
    EnhancementReport,
    TemplateEnhancer,
)
from repro.core.templates import TemplateStore, extract_tokens
from repro.resilience import CircuitBreaker, FaultInjectingLLM, RetryPolicy


class RecordingLLM:
    """Scripted fake: returns canned outputs and records prompts."""

    def __init__(self, outputs):
        self.outputs = list(outputs)
        self.prompts = []

    def complete(self, prompt):
        self.prompts.append(prompt)
        if self.outputs:
            return self.outputs.pop(0)
        return prompt[len(ENHANCEMENT_PROMPT):]


@pytest.fixture()
def store(stress_simple_analysis, stress_simple_app):
    return TemplateStore(stress_simple_analysis, stress_simple_app.glossary)


class TestGuard:
    def test_token_preserving_output_accepted(self, store):
        template = store.templates()[0]
        tokens = " ".join(f"<{t}>" for t in sorted(template.token_names))
        llm = RecordingLLM([f"fluent text with {tokens}"])
        enhancer = TemplateEnhancer(llm)
        assert enhancer.enhance_template(template)
        assert len(template.enhanced_texts) == 1
        template.enhanced_texts.clear()

    def test_token_dropping_output_rejected(self, store):
        template = store.templates()[0]
        llm = RecordingLLM(["no tokens at all"] * 3)
        enhancer = TemplateEnhancer(llm, max_attempts=3)
        assert not enhancer.enhance_template(template)
        assert template.enhanced_texts == []
        assert len(llm.prompts) == 3

    def test_retry_until_valid(self, store):
        template = store.templates()[0]
        tokens = " ".join(f"<{t}>" for t in sorted(template.token_names))
        llm = RecordingLLM(["broken", f"ok {tokens}"])
        enhancer = TemplateEnhancer(llm, max_attempts=3)
        assert enhancer.enhance_template(template)
        assert len(llm.prompts) == 2
        template.enhanced_texts.clear()

    def test_prompt_is_papers_rephrase_prompt(self, store):
        template = store.templates()[0]
        llm = RecordingLLM(["x"])
        TemplateEnhancer(llm, max_attempts=1).enhance_template(template)
        assert llm.prompts[0].startswith("Rephrase the following text: ")


class TestStoreEnhancement:
    def test_simulated_llm_enhances_all_templates(self, store, faithful_llm):
        report = TemplateEnhancer(faithful_llm).enhance_store(store)
        assert report.enhanced == len(store)
        assert report.rejected == 0
        for template in store.templates():
            assert len(template.enhanced_texts) == 1
            assert extract_tokens(template.enhanced_texts[0]) >= extract_tokens(
                template.deterministic_text
            )
            template.enhanced_texts.clear()

    def test_multiple_interchangeable_versions(self, store, faithful_llm):
        TemplateEnhancer(faithful_llm).enhance_store(store, versions=3)
        template = store.templates()[0]
        assert len(template.enhanced_texts) == 3
        # Versions differ (the simulator resamples deterministically).
        assert len(set(template.enhanced_texts)) >= 2
        for current in store.templates():
            current.enhanced_texts.clear()

    def test_report_records_rejections(self, store):
        llm = RecordingLLM(["bad"] * 100)
        report = TemplateEnhancer(llm, max_attempts=2).enhance_store(store)
        assert report.enhanced == 0
        assert report.rejected == 2 * len(store)
        assert report.failures

    def test_unreliable_llm_guard_catches_drops(self, store, lossy_llm):
        """With the lossy simulator, every stored enhanced text still
        carries all tokens — the guard filtered the drops."""
        TemplateEnhancer(lossy_llm, max_attempts=5).enhance_store(store)
        for template in store.templates():
            for text in template.enhanced_texts:
                assert extract_tokens(text) >= extract_tokens(
                    template.deterministic_text
                )
            template.enhanced_texts.clear()


def fast_policy(**kwargs):
    kwargs.setdefault("sleep", lambda _: None)
    return RetryPolicy(**kwargs)


class TestResilientEnhancement:
    """The token guard and the retry policy compose (satellite of PR 3):
    the guard retries bad *answers*, the policy retries failed *calls*."""

    def test_transient_fault_then_success(self, store):
        template = store.templates()[0]
        inner = RecordingLLM([])  # echoes the template back (tokens kept)
        llm = FaultInjectingLLM(inner, "transient:1")
        enhancer = TemplateEnhancer(
            llm, retry_policy=fast_policy(max_attempts=3), breaker=False
        )
        report = EnhancementReport()
        assert enhancer.enhance_template(template, report)
        assert report.enhanced == 1
        assert report.fallbacks == 0
        assert len(inner.prompts) == 1  # fault fired before the backend
        template.enhanced_texts.clear()

    def test_retry_exhaustion_falls_back_to_base_text(self, store):
        template = store.templates()[0]
        inner = RecordingLLM([])
        llm = FaultInjectingLLM(inner, "transient:3")
        enhancer = TemplateEnhancer(
            llm, retry_policy=fast_policy(max_attempts=3), breaker=False
        )
        report = EnhancementReport()
        base_text = template.deterministic_text
        assert not enhancer.enhance_template(template, report)
        assert report.fallbacks == 1
        assert report.enhanced == 0
        assert report.fallback_errors[0][1].startswith("TransientLLMError")
        # The path is degraded, never dropped: base text intact, no
        # partially enhanced version stored.
        assert template.deterministic_text == base_text
        assert template.enhanced_texts == []
        assert inner.prompts == []

    def test_open_breaker_short_circuits_without_llm_call(self, store):
        template = store.templates()[0]
        inner = RecordingLLM([])
        breaker = CircuitBreaker(window=4, failure_threshold=0.5,
                                 min_calls=2, cooldown_s=3600.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        enhancer = TemplateEnhancer(
            inner, retry_policy=fast_policy(), breaker=breaker
        )
        report = EnhancementReport()
        assert not enhancer.enhance_template(template, report)
        assert report.fallbacks == 1
        assert report.fallback_errors[0][1].startswith("CircuitOpen")
        assert inner.prompts == []  # the backend was never reached
        assert template.enhanced_texts == []

    def test_guard_rejections_are_not_fallbacks(self, store):
        """Token-dropping *responses* trip the guard (§4.4), not the
        resilience fallback path — the two counters stay separate."""
        template = store.templates()[0]
        inner = RecordingLLM([])
        llm = FaultInjectingLLM(inner, "drop:3")
        enhancer = TemplateEnhancer(
            llm, max_attempts=3, retry_policy=fast_policy(), breaker=False
        )
        report = EnhancementReport()
        assert not enhancer.enhance_template(template, report)
        assert report.fallbacks == 0
        assert report.rejected == 3
        assert template.enhanced_texts == []

    def test_store_enhancement_degrades_per_template(self, store):
        """One template exhausts its retry budget; the rest enhance."""
        inner = RecordingLLM([])
        llm = FaultInjectingLLM(inner, "transient:3")
        enhancer = TemplateEnhancer(
            llm, retry_policy=fast_policy(max_attempts=3), breaker=False
        )
        report = enhancer.enhance_store(store)
        assert report.fallbacks == 1
        assert report.enhanced == len(store) - 1
        for template in store.templates():
            assert template.deterministic_text
            template.enhanced_texts.clear()
