"""Unit tests for explanation templates and instantiation."""

import pytest

from repro.core.templates import (
    TemplateError,
    TemplateStore,
    extract_tokens,
    join_values,
)
from repro.datalog.atoms import fact


class TestTokenUtilities:
    def test_extract_tokens(self):
        assert extract_tokens("since <f> has <p1>, then <f>") == frozenset(
            {"f", "p1"}
        )

    def test_extract_tokens_empty(self):
        assert extract_tokens("no tokens here") == frozenset()

    def test_join_single(self):
        assert join_values(["A"]) == "A"

    def test_join_two(self):
        assert join_values(["2", "9"]) == "2 and 9"

    def test_join_three(self):
        assert join_values(["2", "5", "9"]) == "2, 5 and 9"

    def test_join_empty_rejected(self):
        with pytest.raises(TemplateError):
            join_values([])


class TestStore:
    def test_one_template_per_variant(self, stress_simple_store,
                                      stress_simple_analysis):
        assert len(stress_simple_store) == len(stress_simple_analysis.all_variants)

    def test_lookup_by_variant(self, stress_simple_store, stress_simple_analysis):
        for variant in stress_simple_analysis.all_variants:
            template = stress_simple_store.get(variant)
            assert template.path.name == variant.name

    def test_lookup_unknown_variant_fails(self, stress_simple_store,
                                          stress_simple_analysis):
        from dataclasses import replace

        ghost = replace(stress_simple_analysis.simple_paths[0], name="PiGhost")
        with pytest.raises(TemplateError):
            stress_simple_store.get(ghost)

    def test_deterministic_text_has_tokens(self, stress_simple_store):
        for template in stress_simple_store.templates():
            assert extract_tokens(template.deterministic_text) <= template.token_names

    def test_review_workflow(self, stress_simple_analysis, stress_simple_app):
        store = TemplateStore(stress_simple_analysis, stress_simple_app.glossary)
        assert len(store.pending_review()) == len(store)
        store.approve_all()
        assert store.pending_review() == ()

    def test_describe(self, stress_simple_store):
        assert "Template store" in stress_simple_store.describe()


class TestTextSelection:
    def test_prefers_enhanced_when_present(self, stress_simple_store):
        template = stress_simple_store.templates()[0]
        template.enhanced_texts = ["enhanced <f> <s> <p1> version"]
        try:
            assert template.text() == "enhanced <f> <s> <p1> version"
            assert template.text(prefer_enhanced=False) == template.deterministic_text
        finally:
            template.enhanced_texts = []

    def test_variant_index_rotation(self, stress_simple_store):
        template = stress_simple_store.templates()[0]
        template.enhanced_texts = ["v0", "v1"]
        try:
            assert template.text(variant_index=0) == "v0"
            assert template.text(variant_index=1) == "v1"
            assert template.text(variant_index=2) == "v0"
        finally:
            template.enhanced_texts = []


class TestInstantiation:
    def _segment(self, figure8_explainer, figure8):
        scenario, result = figure8
        spine = result.spine(fact("Default", "C"))
        return figure8_explainer.mapper.map_spine(
            spine, result.chase_result.derivation
        )

    def test_instantiation_replaces_all_tokens(self, figure8_explainer, figure8):
        segments = self._segment(figure8_explainer, figure8)
        for segment in segments:
            instance = figure8_explainer.store.get(segment.path).instantiate(
                segment.assignments, prefer_enhanced=False
            )
            assert "<" not in instance.text

    def test_multi_contributor_token_joined(self, figure8_explainer, figure8):
        segments = self._segment(figure8_explainer, figure8)
        cycle = segments[-1]
        instance = figure8_explainer.store.get(cycle.path).instantiate(
            cycle.assignments, prefer_enhanced=False
        )
        assert "2 and 9" in instance.text
        assert "11" in instance.text

    def test_token_values_recorded(self, figure8_explainer, figure8):
        segments = self._segment(figure8_explainer, figure8)
        cycle = segments[-1]
        instance = figure8_explainer.store.get(cycle.path).instantiate(
            cycle.assignments, prefer_enhanced=False
        )
        assert ("2", "9") in instance.token_values.values()

    def test_constants_accessor(self, figure8_explainer, figure8):
        segments = self._segment(figure8_explainer, figure8)
        cycle = segments[-1]
        instance = figure8_explainer.store.get(cycle.path).instantiate(
            cycle.assignments, prefer_enhanced=False
        )
        assert {"2", "9", "11", "B", "C", "10"} <= instance.constants()

    def test_missing_assignment_rejected(self, figure8_explainer, figure8):
        segments = self._segment(figure8_explainer, figure8)
        cycle = segments[-1]
        with pytest.raises(TemplateError):
            figure8_explainer.store.get(cycle.path).instantiate({})

    def test_all_equal_enumeration_collapses(self):
        """[B, B] never renders as 'B and B'."""
        from repro.core.templates import ExplanationTemplate

        assert ExplanationTemplate._finalize_bucket(["B", "B"]) == ("B",)
        assert ExplanationTemplate._finalize_bucket(["2", "9"]) == ("2", "9")
