"""Full phrase coverage: every operator and aggregate verbalization, the
console entry point, and remaining rendering corners."""

import subprocess
import sys

import pytest

from repro.core import DomainGlossary, Explainer, Verbalizer
from repro.datalog import fact, parse_program, parse_rule
from repro.engine import reason


@pytest.fixture()
def plain_glossary():
    glossary = DomainGlossary()
    glossary.define("P", ["x", "a"], "<x> has value <a>")
    glossary.define("Q", ["x"], "<x> qualifies")
    glossary.define("R", ["x", "t"], "<x> totals <t>")
    return glossary


class TestOperatorPhrases:
    @pytest.mark.parametrize("operator,phrase", [
        (">", "is higher than"),
        ("<", "is lower than"),
        (">=", "is at least"),
        ("<=", "is at most"),
        ("==", "is equal to"),
        ("!=", "is different from"),
    ])
    def test_each_operator_verbalized(self, plain_glossary, operator, phrase):
        rule = parse_rule(f"P(x, a), a {operator} 5 -> Q(x)")
        sentence = Verbalizer(plain_glossary).rule_sentence(rule)
        assert f"<a> {phrase} 5" in sentence


class TestAggregatePhrases:
    @pytest.mark.parametrize("function,phrase", [
        ("sum", "the sum of"),
        ("prod", "the product of"),
        ("min", "the minimum of"),
        ("max", "the maximum of"),
        ("count", "the count of"),
    ])
    def test_each_aggregate_verbalized(self, plain_glossary, function, phrase):
        rule = parse_rule(f"P(x, a), t = {function}(a) -> R(x, t)")
        sentence = Verbalizer(plain_glossary).rule_sentence(
            rule, multi_contributors=True
        )
        assert f"with <t> given by {phrase} <a>" in sentence

    def test_min_aggregate_end_to_end(self, plain_glossary):
        program = parse_program(
            "r1: P(x, a), t = min(a) -> R(x, t).", name="m", goal="R"
        )
        result = reason(program, [fact("P", "X", 4), fact("P", "X", 9)])
        explainer = Explainer(result, plain_glossary)
        text = explainer.explain(fact("R", "X", 4), prefer_enhanced=False).text
        assert "with 4 given by the minimum of 4 and 9" in text


class TestArithmeticPhrases:
    def test_all_operators_in_conditions(self, plain_glossary):
        rule = parse_rule("P(x, a), a + 1 > a - 1, a * 2 >= a / 2 -> Q(x)")
        sentence = Verbalizer(plain_glossary).rule_sentence(rule)
        assert "<a> plus 1" in sentence
        assert "<a> minus 1" in sentence
        assert "<a> times 2" in sentence
        assert "<a> divided by 2" in sentence


class TestConsoleEntryPoint:
    def test_installed_script_runs(self):
        # The console script only exists after `pip install -e .`; a plain
        # PYTHONPATH=src checkout falls back to the module entry point,
        # which runs the identical main().
        try:
            completed = subprocess.run(
                ["repro-explain", "--analyse", "company_control"],
                capture_output=True, text=True, timeout=120,
            )
        except FileNotFoundError:
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli",
                 "--analyse", "company_control"],
                capture_output=True, text=True, timeout=120,
            )
        assert completed.returncode == 0
        assert "simple reasoning paths" in completed.stdout

    def test_module_invocation_runs(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--demo", "figure8",
             "--deterministic"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "Q_e = {Default(C)}" in completed.stdout
