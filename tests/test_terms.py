"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    is_ground,
    make_term,
)


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(5) == Constant(5)
        assert Constant("A") != Constant("B")

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_str_of_string_constant(self):
        assert str(Constant("IrishBank")) == "IrishBank"

    def test_str_of_integral_float_drops_decimal(self):
        assert str(Constant(7.0)) == "7"

    def test_str_of_fractional_float(self):
        assert str(Constant(0.55)) == "0.55"

    def test_is_numeric_for_numbers(self):
        assert Constant(3).is_numeric
        assert Constant(0.5).is_numeric

    def test_is_numeric_false_for_strings_and_bools(self):
        assert not Constant("x").is_numeric
        assert not Constant(True).is_numeric

    def test_int_and_float_constants_distinct_when_unequal(self):
        # Python equality: 5 == 5.0, so the dataclass treats them equal.
        assert Constant(5) == Constant(5.0)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_str(self):
        assert str(Variable("ts")) == "ts"


class TestNull:
    def test_equality_by_label(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_str_format(self):
        assert str(Null(7)) == "_N7"


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        produced = {factory.fresh() for _ in range(100)}
        assert len(produced) == 100

    def test_start_offset(self):
        factory = NullFactory(start=10)
        assert factory.fresh() == Null(10)

    def test_two_factories_independent(self):
        first, second = NullFactory(), NullFactory()
        assert first.fresh() == second.fresh()


class TestGroundness:
    def test_constants_and_nulls_are_ground(self):
        assert is_ground(Constant(1))
        assert is_ground(Null(0))

    def test_variables_are_not_ground(self):
        assert not is_ground(Variable("x"))


class TestMakeTerm:
    def test_wraps_raw_values(self):
        assert make_term("A") == Constant("A")
        assert make_term(3) == Constant(3)
        assert make_term(0.5) == Constant(0.5)

    def test_passes_terms_through(self):
        variable = Variable("x")
        assert make_term(variable) is variable

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            make_term([1, 2])
