"""Property-based tests on the extended engine: semi-naive equivalence,
stratified negation against reference semantics, and the columnar
store's structural invariants under copy and snapshot round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import fact, parse_program
from repro.engine import Database, chase
from repro.io import dumps_database, loads_database

entity_names = st.sampled_from(["A", "B", "C", "D", "E", "F"])
edges = st.lists(
    st.tuples(entity_names, entity_names).filter(lambda e: e[0] != e[1]),
    min_size=1, max_size=10, unique=True,
)

TRANSITIVE = parse_program(
    "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
    name="tc", goal="T",
)

NEGATION = parse_program(
    """
    base: E(x, y) -> T(x, y).
    rec:  T(x, y), E(y, z) -> T(x, z).
    root: Node(x), not Incoming(x) -> Source(x).
    inc:  E(y, x) -> Incoming(x).
    """,
    name="roots", goal="Source",
)


class TestSemiNaiveEquivalenceProperty:
    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_same_facts_same_proof_sizes(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        naive = chase(TRANSITIVE, database)
        semi = chase(TRANSITIVE, database, strategy="semi-naive")
        assert set(naive.database.facts()) == set(semi.database.facts())
        # Every derived fact has a derivation record in both runs.
        assert set(naive.derivation) == set(semi.derivation)

    @settings(deadline=None, max_examples=25)
    @given(edges)
    def test_semi_naive_never_does_more_rounds(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        naive = chase(TRANSITIVE, database)
        semi = chase(TRANSITIVE, database, strategy="semi-naive")
        assert semi.rounds <= naive.rounds + 1


class TestStratifiedNegationProperty:
    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_sources_are_nodes_without_incoming_edges(self, edge_list):
        nodes = sorted({n for edge in edge_list for n in edge})
        database = Database(
            [fact("E", a, b) for a, b in edge_list]
            + [fact("Node", n) for n in nodes]
        )
        result = chase(NEGATION, database)
        derived_sources = {str(f.terms[0]) for f in result.facts("Source")}
        expected = {
            n for n in nodes if not any(b == n for _, b in edge_list)
        }
        assert derived_sources == expected

    @settings(deadline=None, max_examples=25)
    @given(edges)
    def test_negation_agrees_across_strategies(self, edge_list):
        nodes = sorted({n for edge in edge_list for n in edge})
        database = Database(
            [fact("E", a, b) for a, b in edge_list]
            + [fact("Node", n) for n in nodes]
        )
        naive = chase(NEGATION, database)
        semi = chase(NEGATION, database, strategy="semi-naive")
        assert set(naive.facts("Source")) == set(semi.facts("Source"))


def _assert_columnar_invariants(database: Database) -> None:
    """The structural invariants every Database must uphold:
    dense monotonic sequences, row-aligned columns, and composite
    indexes that agree with a from-scratch rebuild."""
    # Insertion sequences are dense and monotonic over insertion order.
    facts = database.facts()
    assert [database.sequence(f) for f in facts] == list(range(len(facts)))
    # fact_at/location invert sequence.
    for current in facts:
        seq = database.sequence(current)
        assert database.fact_at(seq) == current
        predicate, row = database.location(current)
        assert database.rows(predicate)[row] == current
    # Columns decode back to the stored terms, row by row.
    term = database.symbols.term
    for predicate in database.predicates():
        rows = database.rows(predicate)
        columns = database.columns(predicate)
        sequences = database.row_sequences(predicate)
        assert list(sequences) == sorted(sequences)
        for position, column in enumerate(columns):
            assert [term(i) for i in column] == [
                row.terms[position] for row in rows
            ]
    # Incrementally maintained composite indexes match a from-scratch
    # rebuild over the same symbol table.
    rebuilt = Database(facts, symbols=database.symbols)
    for predicate in database.predicates():
        arity = len(database.columns(predicate))
        for positions in [(0,), tuple(range(arity))]:
            assert database.index_on(predicate, positions) == (
                rebuilt.index_on(predicate, positions)
            )


class TestColumnarStoreProperty:
    @settings(deadline=None, max_examples=30)
    @given(edges)
    def test_invariants_survive_chase_and_copy(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        # Touch composite indexes before copying so the copy must
        # rebuild its own.
        database.index_on("E", (0,))
        result = chase(TRANSITIVE, database, strategy="planned")
        _assert_columnar_invariants(database)
        _assert_columnar_invariants(result.database)
        clone = result.database.copy()
        clone.add(fact("E", "Z0", "Z1"))
        _assert_columnar_invariants(clone)
        # The original is untouched by the clone's growth.
        assert fact("E", "Z0", "Z1") not in result.database
        _assert_columnar_invariants(result.database)

    @settings(deadline=None, max_examples=30)
    @given(edges)
    def test_interned_ids_round_trip_through_snapshots(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        chased = chase(TRANSITIVE, database, strategy="planned").database
        restored = loads_database(dumps_database(chased))
        # Same facts in the same global sequence order...
        assert restored.facts() == chased.facts()
        assert [restored.sequence(f) for f in restored.facts()] == [
            chased.sequence(f) for f in chased.facts()
        ]
        # ...and the identical interned encoding (a warm start keeps
        # every id), including index contents.
        lookup = restored.symbols.lookup
        for term in chased.symbols:
            assert lookup(term) == chased.symbols.lookup(term)
        for predicate in chased.predicates():
            assert restored.columns(predicate) == chased.columns(predicate)
        _assert_columnar_invariants(restored)


class TestConstraintProperty:
    PROGRAM = parse_program(
        """
        base: E(x, y) -> T(x, y).
        rec:  T(x, y), E(y, z) -> T(x, z).
        c1:   T(x, x) -> false.
        """,
        name="acyclic", goal="T",
    )

    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_cycle_constraint_fires_iff_graph_cyclic(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        result = chase(self.PROGRAM, database)
        has_self_reach = any(
            f.terms[0] == f.terms[1] for f in result.facts("T")
        )
        assert bool(result.violations) == has_self_reach
