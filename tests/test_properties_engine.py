"""Property-based tests on the extended engine: semi-naive equivalence
and stratified negation against reference semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import fact, parse_program
from repro.engine import Database, chase

entity_names = st.sampled_from(["A", "B", "C", "D", "E", "F"])
edges = st.lists(
    st.tuples(entity_names, entity_names).filter(lambda e: e[0] != e[1]),
    min_size=1, max_size=10, unique=True,
)

TRANSITIVE = parse_program(
    "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
    name="tc", goal="T",
)

NEGATION = parse_program(
    """
    base: E(x, y) -> T(x, y).
    rec:  T(x, y), E(y, z) -> T(x, z).
    root: Node(x), not Incoming(x) -> Source(x).
    inc:  E(y, x) -> Incoming(x).
    """,
    name="roots", goal="Source",
)


class TestSemiNaiveEquivalenceProperty:
    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_same_facts_same_proof_sizes(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        naive = chase(TRANSITIVE, database)
        semi = chase(TRANSITIVE, database, strategy="semi-naive")
        assert set(naive.database.facts()) == set(semi.database.facts())
        # Every derived fact has a derivation record in both runs.
        assert set(naive.derivation) == set(semi.derivation)

    @settings(deadline=None, max_examples=25)
    @given(edges)
    def test_semi_naive_never_does_more_rounds(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        naive = chase(TRANSITIVE, database)
        semi = chase(TRANSITIVE, database, strategy="semi-naive")
        assert semi.rounds <= naive.rounds + 1


class TestStratifiedNegationProperty:
    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_sources_are_nodes_without_incoming_edges(self, edge_list):
        nodes = sorted({n for edge in edge_list for n in edge})
        database = Database(
            [fact("E", a, b) for a, b in edge_list]
            + [fact("Node", n) for n in nodes]
        )
        result = chase(NEGATION, database)
        derived_sources = {str(f.terms[0]) for f in result.facts("Source")}
        expected = {
            n for n in nodes if not any(b == n for _, b in edge_list)
        }
        assert derived_sources == expected

    @settings(deadline=None, max_examples=25)
    @given(edges)
    def test_negation_agrees_across_strategies(self, edge_list):
        nodes = sorted({n for edge in edge_list for n in edge})
        database = Database(
            [fact("E", a, b) for a, b in edge_list]
            + [fact("Node", n) for n in nodes]
        )
        naive = chase(NEGATION, database)
        semi = chase(NEGATION, database, strategy="semi-naive")
        assert set(naive.facts("Source")) == set(semi.facts("Source"))


class TestConstraintProperty:
    PROGRAM = parse_program(
        """
        base: E(x, y) -> T(x, y).
        rec:  T(x, y), E(y, z) -> T(x, z).
        c1:   T(x, x) -> false.
        """,
        name="acyclic", goal="T",
    )

    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_cycle_constraint_fires_iff_graph_cyclic(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        result = chase(self.PROGRAM, database)
        has_self_reach = any(
            f.terms[0] == f.terms[1] for f in result.facts("T")
        )
        assert bool(result.violations) == has_self_reach
