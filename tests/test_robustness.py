"""Robustness coverage: fallback paths, error positions, rendering
edge cases, cross-seed stability."""

import pytest

from repro.core import Explainer
from repro.datalog import ParseError, fact, parse_program, parse_rule
from repro.engine import reason
from repro.llm import SimulatedLLM
from repro.render.dot import chase_graph_dot, dependency_graph_dot
from repro.study import METHODS, likert_summary, run_expert_study


class TestParserDiagnostics:
    def test_error_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse_rule("Own(x, y, s), s >> 0.5 -> Control(x, y)")
        assert "offset" in str(info.value)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_rule("Own(x, y, s) ~ s -> Control(x, y)")

    def test_constraint_cannot_carry_aggregate(self):
        with pytest.raises(ParseError):
            parse_program("P(x, v), t = sum(v) -> false.", name="bad")

    def test_empty_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("P() -> Q(x)")


class TestMapperFallbacks:
    def test_ignore_sides_fallback_still_explains(self):
        """A program whose structural paths cannot absorb a side branch
        must still produce a (best-effort) explanation via the fallback,
        with the side story prepended by the explainer's recursion."""
        program = parse_program(
            """
            r1: SeedA(x) -> P(x).
            r2: SeedB(x) -> Q(x).
            r3: P(x), Q(x) -> Both(x).
            """,
            name="join", goal="Both",
        )
        from repro.core import DomainGlossary, completeness_ratio

        glossary = DomainGlossary()
        glossary.define("SeedA", ["x"], "<x> is seeded as a")
        glossary.define("SeedB", ["x"], "<x> is seeded as b")
        glossary.define("P", ["x"], "<x> is a p")
        glossary.define("Q", ["x"], "<x> is a q")
        glossary.define("Both", ["x"], "<x> is both")
        result = reason(program, [fact("SeedA", "X"), fact("SeedB", "X")])
        explainer = Explainer(result, glossary)
        explanation = explainer.explain(fact("Both", "X"), prefer_enhanced=False)
        constants = explainer.proof_constants(fact("Both", "X"))
        assert completeness_ratio(explanation.text, constants) == 1.0

    def test_two_intensional_parents_covered(self):
        """r3 joins two derived facts: the mapped path plus side-branch
        recursion must narrate both premises."""
        program = parse_program(
            """
            r1: SeedA(x) -> P(x).
            r2: SeedB(x) -> Q(x).
            r3: P(x), Q(x) -> Both(x).
            """,
            name="join", goal="Both",
        )
        from repro.core import DomainGlossary

        glossary = DomainGlossary()
        glossary.define("SeedA", ["x"], "<x> is seeded as a")
        glossary.define("SeedB", ["x"], "<x> is seeded as b")
        glossary.define("P", ["x"], "<x> is a p")
        glossary.define("Q", ["x"], "<x> is a q")
        glossary.define("Both", ["x"], "<x> is both")
        result = reason(program, [fact("SeedA", "X"), fact("SeedB", "X")])
        explainer = Explainer(result, glossary)
        text = explainer.explain(fact("Both", "X"), prefer_enhanced=False).text
        assert "seeded as a" in text
        assert "seeded as b" in text


class TestDotEscaping:
    def test_quotes_in_entity_names_escaped(self):
        program = parse_program(
            'r1: Owns(x, y) -> Holds(x, y).', name="q", goal="Holds"
        )
        result = reason(program, [fact("Owns", 'He said "hi"', "B")])
        dot = chase_graph_dot(result.graph)
        assert '\\"hi\\"' in dot

    def test_dependency_graph_dot_closes(self, close_links_app):
        from repro.datalog import DependencyGraph

        dot = dependency_graph_dot(DependencyGraph(close_links_app.program))
        assert dot.count("{") == dot.count("}")


class TestExpertStudyStability:
    def test_regime_holds_across_seeds(self):
        """The no-significant-difference regime is not a single-seed
        accident: means stay in band for several rater cohorts."""
        for seed in (0, 1, 2):
            study = run_expert_study(
                SimulatedLLM(seed=seed + 7), raters=14, seed=seed
            )
            for method in METHODS:
                summary = likert_summary(study.ratings[method])
                assert 3.0 <= summary.mean <= 4.4, (seed, method)


class TestSupersededFactQueries:
    def test_superseded_fact_not_in_answers(self):
        program = parse_program(
            """
            alpha: Seed(d) -> Default(d).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: Risk(c, e), Threshold(c, p), e > p -> Default(c).
            """,
            name="chain", goal="Default",
        )
        result = reason(program, [
            fact("Seed", "A"),
            fact("Debts", "A", "B", 5), fact("Threshold", "B", 3),
            fact("Debts", "B", "C", 2), fact("Threshold", "C", 1),
            fact("Debts", "C", "B", 4),
        ])
        superseded = result.chase_result.superseded
        assert superseded  # B's risk was refreshed
        for stale in superseded:
            assert stale not in result.answers(stale.predicate)

    def test_superseded_fact_still_explainable(self):
        """Monotonicity: a superseded partial aggregate was honestly
        derived; its explanation must still be available."""
        from repro.core import DomainGlossary

        program = parse_program(
            """
            alpha: Seed(d) -> Default(d).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: Risk(c, e), Threshold(c, p), e > p -> Default(c).
            """,
            name="chain", goal="Default",
        )
        glossary = DomainGlossary()
        glossary.define("Seed", ["d"], "<d> is seeded")
        glossary.define("Default", ["d"], "<d> is in default")
        glossary.define("Debts", ["d", "c", "v"], "<d> owes <v> to <c>")
        glossary.define("Threshold", ["c", "p"], "<c> tolerates <p>")
        glossary.define("Risk", ["c", "e"], "<c> is exposed for <e>")
        result = reason(program, [
            fact("Seed", "A"),
            fact("Debts", "A", "B", 5), fact("Threshold", "B", 3),
            fact("Debts", "B", "C", 2), fact("Threshold", "C", 1),
            fact("Debts", "C", "B", 4),
        ])
        explainer = Explainer(result, glossary)
        stale = next(iter(result.chase_result.superseded))
        explanation = explainer.explain(stale, prefer_enhanced=False)
        assert explanation.text
