"""Unit tests for substitutions, matching and homomorphisms."""

from repro.datalog.atoms import Atom, fact
from repro.datalog.terms import Constant, Null, Variable
from repro.datalog.unify import (
    apply_substitution,
    exists_homomorphism,
    find_homomorphisms,
    is_ground_under,
    match_atom,
    unify_head_with_body_atom,
)


def v(name):
    return Variable(name)


class TestMatchAtom:
    def test_basic_match(self):
        binding = match_atom(Atom("P", (v("x"), v("y"))), fact("P", "A", "B"))
        assert binding == {v("x"): Constant("A"), v("y"): Constant("B")}

    def test_repeated_variable_must_agree(self):
        assert match_atom(Atom("P", (v("x"), v("x"))), fact("P", "A", "B")) is None
        assert match_atom(Atom("P", (v("x"), v("x"))), fact("P", "A", "A")) is not None

    def test_constant_in_pattern_must_equal(self):
        pattern = Atom("P", (Constant("A"), v("y")))
        assert match_atom(pattern, fact("P", "A", "B")) is not None
        assert match_atom(pattern, fact("P", "C", "B")) is None

    def test_predicate_mismatch(self):
        assert match_atom(Atom("P", (v("x"),)), fact("Q", "A")) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("P", (v("x"),)), fact("P", "A", "B")) is None

    def test_extends_existing_binding(self):
        base = {v("x"): Constant("A")}
        binding = match_atom(Atom("P", (v("x"), v("y"))), fact("P", "A", "B"), base)
        assert binding[v("y")] == Constant("B")
        assert base == {v("x"): Constant("A")}  # input untouched

    def test_conflicting_binding_fails(self):
        base = {v("x"): Constant("Z")}
        assert match_atom(Atom("P", (v("x"),)), fact("P", "A"), base) is None

    def test_null_in_pattern_matches_equal_null(self):
        pattern = Atom("P", (Null(1),))
        assert match_atom(pattern, Atom("P", (Null(1),))) is not None
        assert match_atom(pattern, Atom("P", (Null(2),))) is None


class TestApplySubstitution:
    def test_grounds_variables(self):
        atom = Atom("P", (v("x"), Constant(1)))
        grounded = apply_substitution(atom, {v("x"): Constant("A")})
        assert grounded == fact("P", "A", 1)

    def test_unbound_variables_stay(self):
        atom = Atom("P", (v("x"), v("y")))
        partial = apply_substitution(atom, {v("x"): Constant("A")})
        assert partial.terms == (Constant("A"), v("y"))

    def test_is_ground_under(self):
        atom = Atom("P", (v("x"),))
        assert is_ground_under(atom, {v("x"): Constant(1)})
        assert not is_ground_under(atom, {})


class TestHomomorphisms:
    FACTS = [
        fact("Own", "A", "B", 0.6),
        fact("Own", "B", "C", 0.7),
        fact("Own", "A", "C", 0.2),
    ]

    def test_single_atom_enumeration(self):
        matches = list(
            find_homomorphisms([Atom("Own", (v("x"), v("y"), v("s")))], self.FACTS)
        )
        assert len(matches) == 3

    def test_join_via_shared_variable(self):
        patterns = [
            Atom("Own", (v("x"), v("y"), v("s1"))),
            Atom("Own", (v("y"), v("z"), v("s2"))),
        ]
        matches = list(find_homomorphisms(patterns, self.FACTS))
        assert len(matches) == 1
        only = matches[0]
        assert only[v("x")] == Constant("A")
        assert only[v("z")] == Constant("C")

    def test_initial_binding_restricts(self):
        patterns = [Atom("Own", (v("x"), v("y"), v("s")))]
        matches = list(
            find_homomorphisms(patterns, self.FACTS, {v("x"): Constant("B")})
        )
        assert len(matches) == 1

    def test_exists_homomorphism(self):
        assert exists_homomorphism(
            [Atom("Own", (Constant("A"), v("y"), v("s")))], self.FACTS
        )
        assert not exists_homomorphism(
            [Atom("Own", (Constant("Z"), v("y"), v("s")))], self.FACTS
        )

    def test_empty_pattern_yields_identity(self):
        matches = list(find_homomorphisms([], self.FACTS))
        assert matches == [{}]


class TestPathAdjacency:
    def test_same_predicate_unifies(self):
        head = Atom("Risk", (v("c"), v("e")))
        body = Atom("Risk", (v("a"), v("b")))
        assert unify_head_with_body_atom(head, body)

    def test_constant_clash_fails(self):
        head = Atom("Risk", (v("c"), Constant("long")))
        body = Atom("Risk", (v("a"), Constant("short")))
        assert not unify_head_with_body_atom(head, body)

    def test_constant_vs_variable_ok(self):
        head = Atom("Risk", (v("c"), Constant("long")))
        body = Atom("Risk", (v("a"), v("t")))
        assert unify_head_with_body_atom(head, body)

    def test_different_predicates_fail(self):
        assert not unify_head_with_body_atom(
            Atom("Risk", (v("c"),)), Atom("Default", (v("c"),))
        )
