"""Tests for why-not explanations (non-answers)."""

import pytest

from repro.apps import company_control, golden_powers, stress_test
from repro.core.whynot import WhyNotExplainer
from repro.datalog import fact


@pytest.fixture()
def surviving_creditor():
    """A defaults; B is exposed for less than its capital — no cascade."""
    application = stress_test.build()
    result = application.reason([
        stress_test.shock("A", 9), stress_test.has_capital("A", 5),
        stress_test.has_capital("B", 9),
        stress_test.long_term_debt("A", "B", 4),
    ])
    return WhyNotExplainer(result, application.glossary)


class TestConditions:
    def test_failing_threshold_verbalized_with_values(self, surviving_creditor):
        answer = surviving_creditor.explain_why_not(fact("Default", "B"))
        assert "4 is not such that it is higher than 9" in answer.text
        condition_obstacles = [
            o for o in answer.obstacles if o.kind == "condition"
        ]
        assert any(o.rule.label == "sigma7" for o in condition_obstacles)

    def test_shock_below_capital(self):
        application = stress_test.build()
        result = application.reason([
            stress_test.shock("A", 3), stress_test.has_capital("A", 5),
        ])
        explainer = WhyNotExplainer(result, application.glossary)
        answer = explainer.explain_why_not(fact("Default", "A"))
        assert "3 is not such that it is higher than 5" in answer.text


class TestMissingPremises:
    def test_missing_shock_reported(self, surviving_creditor):
        answer = surviving_creditor.explain_why_not(fact("Default", "C"))
        assert "no evidence" in answer.text

    def test_unbound_positions_rendered_as_something(self, surviving_creditor):
        answer = surviving_creditor.explain_why_not(fact("Default", "C"))
        assert "something" in answer.text

    def test_aggregation_below_majority(self):
        application = company_control.build()
        result = application.reason([
            company_control.own("H", "S1", 0.8),
            company_control.own("S1", "T", 0.3),
        ])
        explainer = WhyNotExplainer(result, application.glossary)
        answer = explainer.explain_why_not(fact("Control", "H", "T"))
        # σ3's aggregate over the single 0.3 contribution fails ts > 0.5.
        assert "0.3 is not such that it is higher than 0.5" in answer.text


class TestNegationBlockers:
    def test_exemption_blocks_alert(self):
        application = golden_powers.build()
        result = application.reason([
            golden_powers.own("F", "S", 0.9),
            golden_powers.foreign("F"), golden_powers.strategic("S"),
            golden_powers.exempt("F"),
        ])
        explainer = WhyNotExplainer(result, application.glossary)
        answer = explainer.explain_why_not(fact("Alert", "F", "S"))
        blockers = [o for o in answer.obstacles if o.kind == "negation"]
        assert blockers
        assert "F holds a golden-power exemption" in answer.text


class TestApiContract:
    def test_derived_fact_rejected(self, surviving_creditor):
        with pytest.raises(ValueError):
            surviving_creditor.explain_why_not(fact("Default", "A"))

    def test_edb_fact_rejected(self, surviving_creditor):
        with pytest.raises(ValueError):
            surviving_creditor.explain_why_not(fact("HasCapital", "A", 5))

    def test_underivable_predicate(self, surviving_creditor):
        answer = surviving_creditor.explain_why_not(
            fact("Shock", "Z", 1)
        )
        assert "could only hold as input data" in answer.text
        assert answer.obstacles == ()

    def test_every_candidate_rule_reported(self, surviving_creditor):
        answer = surviving_creditor.explain_why_not(fact("Default", "B"))
        labels = {o.rule.label for o in answer.obstacles}
        assert labels == {"sigma4", "sigma7"}


class TestGroupAggregates:
    def test_group_total_reported_not_single_contribution(self):
        """H holds 0.25 + 0.2 via two subsidiaries: the report must state
        the group total 0.45, not either individual stake."""
        application = company_control.build()
        result = application.reason([
            company_control.own("H", "S1", 0.8),
            company_control.own("H", "S2", 0.9),
            company_control.own("S1", "T", 0.25),
            company_control.own("S2", "T", 0.2),
        ])
        explainer = WhyNotExplainer(result, application.glossary)
        answer = explainer.explain_why_not(fact("Control", "H", "T"))
        assert "0.45 is not such that it is higher than 0.5" in answer.text


class TestExplainViolation:
    """Constraint-violation reports (Explainer.explain_violation)."""

    @staticmethod
    def _vetoed_takeover():
        """F (vetoed, foreign) takes 90% of strategic S: Alert(F, S) is
        derived and kappa1 (Alert + Vetoed -> false) is violated."""
        application = golden_powers.build()
        result = application.reason([
            golden_powers.own("F", "S", 0.9),
            golden_powers.foreign("F"), golden_powers.strategic("S"),
            golden_powers.vetoed("F"),
        ])
        return application.explainer(result), result

    def test_violation_found_and_reported(self):
        explainer, result = self._vetoed_takeover()
        assert result.violations
        violation = result.violations[0]
        report = explainer.explain_violation(violation)
        assert "violates constraint kappa1" in report
        assert "must not hold together" in report
        # The derived witness's own story precedes the verdict.
        assert "F" in report and "S" in report

    def test_no_violation_without_veto(self):
        application = golden_powers.build()
        result = application.reason([
            golden_powers.own("F", "S", 0.9),
            golden_powers.foreign("F"), golden_powers.strategic("S"),
        ])
        assert result.violations == ()

    def test_second_call_is_cached_and_identical(self):
        explainer, result = self._vetoed_takeover()
        violation = result.violations[0]
        first = explainer.explain_violation(violation)
        second = explainer.explain_violation(violation)
        assert first is second  # served from the violation region
        region = explainer._violation_region
        assert region.stats.misses == 1
        assert region.stats.hits == 1
        # A different option set is keyed apart, not served stale.
        bare = explainer.explain_violation(violation, prefer_enhanced=False)
        assert region.stats.misses == 2
        assert bare == explainer.explain_violation(
            violation, prefer_enhanced=False
        )


class TestIndexSharing:
    def test_prober_reuses_a_shared_index(self, surviving_creditor):
        """Passing index= shares the session's active-fact view instead
        of rebuilding the filtered instance per query."""
        result = surviving_creditor.result
        shared = WhyNotExplainer(
            result, surviving_creditor.glossary, index=result.index
        )
        assert shared.index is result.index
        assert surviving_creditor.index is result.index  # default wiring
        first = shared.explain_why_not(fact("Default", "B"))
        again = surviving_creditor.explain_why_not(fact("Default", "B"))
        assert first.text == again.text


class TestValueMismatch:
    def test_actual_aggregate_total_reported(self):
        """Querying the wrong integrated stake reports the real total."""
        from repro.apps import integrated_ownership as io_app

        application = io_app.build()
        result = application.reason([io_app.own("Rival", "OperCo", 0.25)])
        explainer = WhyNotExplainer(result, application.glossary)
        answer = explainer.explain_why_not(
            fact("IntOwn", "Rival", "OperCo", 0.3)
        )
        assert "its aggregate totals 0.25, not 0.3" in answer.text
        assert any(o.kind == "value-mismatch" for o in answer.obstacles)
