"""Unit tests for repro.datalog.aggregates."""

import pytest

from repro.datalog.aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from repro.datalog.errors import EvaluationError
from repro.datalog.terms import Variable


def spec(function="sum"):
    return AggregateSpec(Variable("e"), function, Variable("v"))


class TestConstruction:
    def test_known_functions(self):
        for function in AGGREGATE_FUNCTIONS:
            assert spec(function).function == function

    def test_unknown_function_rejected(self):
        with pytest.raises(EvaluationError):
            spec("median")

    def test_argument_variables(self):
        assert spec().argument_variables() == frozenset({Variable("v")})

    def test_with_group_by(self):
        grouped = spec().with_group_by([Variable("c")])
        assert grouped.group_by == (Variable("c"),)

    def test_str(self):
        assert str(spec()) == "e = sum(v)"


class TestEvaluation:
    def test_sum(self):
        assert spec("sum").evaluate([2, 9]) == 11

    def test_sum_keeps_fractions(self):
        assert spec("sum").evaluate([0.36, 0.21]) == pytest.approx(0.57)

    def test_sum_rounds_float_noise(self):
        # 0.275 + 0.295 must not verbalize as 0.5700000000000001
        result = spec("sum").evaluate([0.275, 0.295])
        assert str(result) == "0.57"

    def test_sum_integral_float_becomes_int(self):
        assert spec("sum").evaluate([2.5, 2.5]) == 5
        assert isinstance(spec("sum").evaluate([2.5, 2.5]), int)

    def test_prod(self):
        assert spec("prod").evaluate([2, 3, 4]) == 24

    def test_min_max(self):
        assert spec("min").evaluate([5, 2, 9]) == 2
        assert spec("max").evaluate([5, 2, 9]) == 9

    def test_count(self):
        assert spec("count").evaluate([10, 20, 30]) == 3

    def test_single_contributor(self):
        """One contributor behaves like no aggregation (paper, §4.1)."""
        assert spec("sum").evaluate([7]) == 7

    def test_empty_group_rejected(self):
        with pytest.raises(EvaluationError):
            spec("sum").evaluate([])

    def test_non_numeric_rejected(self):
        with pytest.raises(EvaluationError):
            spec("sum").evaluate(["a"])

    def test_bool_rejected(self):
        with pytest.raises(EvaluationError):
            spec("sum").evaluate([True, 1])
