"""Unit tests for the verbalizer — paper Section 4.2 and Figure 6."""

import pytest

from repro.core.structural import StructuralAnalysis
from repro.core.verbalizer import (
    PathTokenMap,
    Verbalizer,
    build_path_tokens,
    render_constant,
)
from repro.datalog.atoms import fact
from repro.datalog.terms import Constant


@pytest.fixture()
def verbalizer(stress_simple_app):
    return Verbalizer(stress_simple_app.glossary)


@pytest.fixture()
def paths(stress_simple_analysis):
    by_size = {}
    for path in stress_simple_analysis.simple_paths:
        by_size[len(path.rules)] = path
    return by_size


class TestRenderConstant:
    def test_integral_float(self):
        assert render_constant(Constant(7.0)) == "7"

    def test_string(self):
        assert render_constant(Constant("long")) == "long"


class TestRuleSentences:
    def test_alpha_sentence_shape(self, verbalizer, stress_simple_app):
        rule = stress_simple_app.program.rule("alpha")
        sentence = verbalizer.rule_sentence(rule)
        assert sentence.startswith("Since ")
        assert ", then <f> is in default." in sentence
        assert "<s> is higher than <p1>" in sentence

    def test_gamma_uses_is_lower_than(self, verbalizer, stress_simple_app):
        rule = stress_simple_app.program.rule("gamma")
        sentence = verbalizer.rule_sentence(rule)
        assert "<p2> is lower than <e>" in sentence

    def test_aggregate_truncated_in_single_mode(self, verbalizer, stress_simple_app):
        """Single-contributor aggregations read like plain rules (§4.2)."""
        rule = stress_simple_app.program.rule("beta")
        sentence = verbalizer.rule_sentence(rule, multi_contributors=False)
        assert "sum" not in sentence

    def test_aggregate_verbalized_in_multi_mode(self, verbalizer, stress_simple_app):
        rule = stress_simple_app.program.rule("beta")
        sentence = verbalizer.rule_sentence(rule, multi_contributors=True)
        assert "with <e> given by the sum of <v>" in sentence


class TestPathTokens:
    def test_contributor_variables_keep_their_own_tokens(self, paths):
        """β aggregates over its contributors, so its <d> stays distinct
        from α's <f> — exactly the paper's Figure 6 Π2 template, which
        writes "...then <f> is in default. Since <d> is in default, ..."."""
        path = paths[3]
        tokens = build_path_tokens(path)
        assert tokens.token("alpha", "f") != tokens.token("beta", "d")

    def test_group_variables_inherited_through_aggregates(self, paths):
        """γ consumes β's Risk(c, e): c is β's group variable, shared."""
        path = paths[3]
        tokens = build_path_tokens(path)
        assert tokens.token("beta", "c") == tokens.token("gamma", "c")

    def test_same_name_different_rules_distinct_when_not_unified(self):
        """In company control Π = {σ1, σ3}, σ1's y (the intermediary) and
        σ3's y (the target) are different entities: distinct tokens.  σ3's
        grouping variable x, however, is inherited from σ1's head."""
        from repro.apps import company_control

        application = company_control.build()
        analysis = StructuralAnalysis(application.program)
        path = next(
            p for p in analysis.simple_paths
            if frozenset(p.labels) == frozenset({"sigma1", "sigma3"})
        )
        tokens = build_path_tokens(path)
        assert tokens.token("sigma1", "y") != tokens.token("sigma3", "y")
        assert tokens.token("sigma3", "x") == tokens.token("sigma1", "x")
        # z runs over σ3's contributors: its own token, not σ1's y.
        assert tokens.token("sigma3", "z") != tokens.token("sigma1", "y")

    def test_all_rule_variables_tokenized(self, paths):
        path = paths[3]
        tokens = build_path_tokens(path)
        for rule in path.rules:
            for variable in rule.body_variables():
                assert tokens.token(rule.label, variable)


class TestPathText:
    def test_figure6_pi2_template(self, verbalizer, paths):
        """The deterministic template of the three-rule path mirrors the
        Figure 6 Π2 row."""
        text, tokens = verbalizer.path_text(paths[3].base_variant())
        assert text.count("Since ") == 3
        assert "a shock amounting to <s>" in text
        assert "sum" not in text  # single-contributor variant

    def test_figure6_pi3_template_has_aggregation(self, verbalizer, paths):
        multi = next(
            v for v in paths[3].variants() if v.multi_rules == frozenset({"beta"})
        )
        text, __ = verbalizer.path_text(multi)
        assert "given by the sum of <v>" in text

    def test_token_map_covers_text_tokens(self, verbalizer, paths):
        from repro.core.templates import extract_tokens

        text, tokens = verbalizer.path_text(paths[3])
        assert extract_tokens(text) <= tokens.tokens()


class TestInstanceVerbalization:
    def test_step_sentence_with_constants(self, figure8, verbalizer):
        __, result = figure8
        record = result.chase_result.record_for(fact("Default", "A"))
        sentence = verbalizer.step_sentence(record)
        assert "a shock amounting to 6" in sentence
        assert "then A is in default." in sentence
        assert "6 is higher than 5" in sentence

    def test_multi_aggregate_step_lists_contributions(self, figure8, verbalizer):
        __, result = figure8
        record = result.chase_result.record_for(fact("Risk", "C", 11))
        sentence = verbalizer.step_sentence(record)
        assert "11 is given by the sum of 2 and 9" in sentence

    def test_proof_text_one_sentence_per_step(self, figure8, verbalizer):
        __, result = figure8
        records = result.provenance.proof_records(fact("Default", "C"))
        text = verbalizer.proof_text(records)
        assert text.count("Since ") == 5
