"""Unit tests for repro.datalog.conditions."""

import pytest

from repro.datalog.conditions import (
    BinaryOp,
    Comparison,
    evaluate_expression,
    expression_variables,
)
from repro.datalog.errors import EvaluationError
from repro.datalog.terms import Constant, Null, Variable


def binding(**kwargs):
    return {Variable(name): Constant(value) for name, value in kwargs.items()}


class TestExpressionEvaluation:
    def test_constant_leaf(self):
        assert evaluate_expression(Constant(5), {}) == 5

    def test_variable_leaf(self):
        assert evaluate_expression(Variable("x"), binding(x=3)) == 3

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Variable("x"), {})

    def test_arithmetic_operations(self):
        x = Variable("x")
        b = binding(x=10)
        assert evaluate_expression(BinaryOp("+", x, Constant(5)), b) == 15
        assert evaluate_expression(BinaryOp("-", x, Constant(4)), b) == 6
        assert evaluate_expression(BinaryOp("*", x, Constant(2)), b) == 20
        assert evaluate_expression(BinaryOp("/", x, Constant(4)), b) == 2.5

    def test_nested_expression(self):
        expr = BinaryOp("*", BinaryOp("+", Constant(1), Constant(2)), Constant(4))
        assert evaluate_expression(expr, {}) == 12

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(BinaryOp("/", Constant(1), Constant(0)), {})

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(BinaryOp("+", Constant("a"), Constant(1)), {})

    def test_null_leaf_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Null(0), {})

    def test_variable_bound_to_null_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Variable("x"), {Variable("x"): Null(0)})


class TestExpressionVariables:
    def test_collects_nested_variables(self):
        expr = BinaryOp("+", Variable("a"), BinaryOp("*", Variable("b"), Constant(2)))
        assert set(expression_variables(expr)) == {Variable("a"), Variable("b")}

    def test_constants_contribute_nothing(self):
        assert list(expression_variables(Constant(1))) == []


class TestComparison:
    def test_all_operators(self):
        b = binding(x=5, y=3)
        x, y = Variable("x"), Variable("y")
        assert Comparison(">", x, y).holds(b)
        assert not Comparison("<", x, y).holds(b)
        assert Comparison(">=", x, Constant(5)).holds(b)
        assert Comparison("<=", y, Constant(3)).holds(b)
        assert Comparison("==", x, Constant(5)).holds(b)
        assert Comparison("!=", x, y).holds(b)

    def test_unknown_operator_rejected(self):
        with pytest.raises(EvaluationError):
            Comparison("~", Variable("x"), Variable("y"))

    def test_string_equality(self):
        b = {Variable("t"): Constant("long")}
        assert Comparison("==", Variable("t"), Constant("long")).holds(b)
        assert Comparison("!=", Variable("t"), Constant("short")).holds(b)

    def test_incomparable_types_raise(self):
        b = {Variable("t"): Constant("long")}
        with pytest.raises(EvaluationError):
            Comparison(">", Variable("t"), Constant(1)).holds(b)

    def test_variables_of_both_sides(self):
        comparison = Comparison(
            ">", BinaryOp("+", Variable("a"), Variable("b")), Variable("c")
        )
        assert comparison.variables() == frozenset(
            {Variable("a"), Variable("b"), Variable("c")}
        )

    def test_str(self):
        assert str(Comparison(">", Variable("s"), Variable("p1"))) == "s > p1"

    def test_paper_alpha_condition(self):
        """Rule α: s > p1 with the Figure 8 values (6 > 5)."""
        assert Comparison(">", Variable("s"), Variable("p1")).holds(
            binding(s=6, p1=5)
        )
