"""Unit tests for the chase graph G(D, Σ) — paper Figure 8."""

from repro.datalog.atoms import fact
from repro.engine.chase_graph import ChaseGraph


class TestFigure8Graph:
    def test_nodes_include_all_facts(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        assert fact("Default", "C") in graph.nodes()
        assert fact("Shock", "A", 6) in graph.nodes()

    def test_roots_are_edb_facts(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        roots = set(graph.roots())
        assert fact("Shock", "A", 6) in roots
        assert fact("Default", "A") not in roots

    def test_edges_labelled_with_rules(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        labels = {
            (str(e.source), str(e.target)): e.rule_label for e in graph.edges
        }
        assert labels[("Shock(A, 6)", "Default(A)")] == "alpha"
        assert labels[("Default(A)", "Risk(B, 7)")] == "beta"
        assert labels[("Risk(C, 11)", "Default(C)")] == "gamma"

    def test_aggregate_contributors_are_parents(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        parents = set(graph.parents(fact("Risk", "C", 11)))
        assert fact("Debts", "B", "C", 2) in parents
        assert fact("Debts", "B", "C", 9) in parents
        assert fact("Default", "B") in parents

    def test_children(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        children = graph.children(fact("Default", "A"))
        assert fact("Risk", "B", 7) in children


class TestProofExtraction:
    def test_proof_size_matches_figure8(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        assert graph.proof_size(fact("Default", "C")) == 5

    def test_proof_size_of_intermediate_fact(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        assert graph.proof_size(fact("Default", "A")) == 1
        assert graph.proof_size(fact("Default", "B")) == 3

    def test_proof_size_of_edb_fact_is_zero(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        assert graph.proof_size(fact("Shock", "A", 6)) == 0

    def test_ancestor_records_in_derivation_order(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        records = graph.ancestor_records(fact("Default", "C"))
        assert [r.rule_label for r in records] == [
            "alpha", "beta", "gamma", "beta", "gamma",
        ]

    def test_proof_facts_include_edb_parents(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        proof = set(graph.proof_facts(fact("Default", "C")))
        assert fact("Debts", "B", "C", 9) in proof
        assert fact("HasCapital", "C", 10) in proof

    def test_describe_lists_edges(self, figure8):
        __, result = figure8
        graph = ChaseGraph(result.chase_result)
        assert "Default(C)" in graph.describe()
