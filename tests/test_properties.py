"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* unification/matching round trips (a grounded atom always matches its
  pattern with the grounding substitution);
* chase soundness (every derived fact has a record whose parents are in
  the database; derivations are acyclic and monotone);
* structural analysis (paths are finite, edge-disjoint per label, cycles
  touch their anchors);
* template token preservation through instantiation (the completeness
  guarantee of Section 6.3);
* omission measurement arithmetic.
"""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import generators
from repro.core import (
    Explainer,
    StructuralAnalysis,
    completeness_ratio,
    extract_tokens,
    join_values,
    missing_tokens,
    omission_ratio,
)
from repro.datalog.atoms import Atom, fact
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import apply_substitution, find_homomorphisms, match_atom
from repro.engine import Database, reason

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

entity_names = st.sampled_from(["A", "B", "C", "D", "E", "F", "G", "H"])
variable_names = st.sampled_from(["x", "y", "z", "u", "v", "w"])
predicates = st.sampled_from(["P", "Q", "R"])

terms = st.one_of(
    entity_names.map(Constant),
    st.integers(min_value=0, max_value=20).map(Constant),
    variable_names.map(Variable),
)
ground_terms = st.one_of(
    entity_names.map(Constant),
    st.integers(min_value=0, max_value=20).map(Constant),
)


@st.composite
def atoms(draw, ground=False):
    predicate = draw(predicates)
    arity = draw(st.integers(min_value=1, max_value=3))
    pool = ground_terms if ground else terms
    return Atom(predicate, tuple(draw(pool) for _ in range(arity)))


# ----------------------------------------------------------------------
# Unification properties
# ----------------------------------------------------------------------

class TestUnificationProperties:
    @given(atoms())
    def test_grounding_then_matching_roundtrips(self, pattern):
        binding = {v: Constant("K") for v in pattern.variable_set()}
        grounded = apply_substitution(pattern, binding)
        recovered = match_atom(pattern, grounded)
        assert recovered is not None
        for variable in pattern.variable_set():
            assert recovered[variable] == Constant("K")

    @given(atoms(ground=True), atoms(ground=True))
    def test_ground_atoms_match_iff_equal(self, first, second):
        outcome = match_atom(first, second)
        if first == second:
            assert outcome == {}
        else:
            assert outcome is None

    @given(st.lists(atoms(ground=True), min_size=1, max_size=6))
    def test_every_fact_matches_its_own_pattern_set(self, facts):
        for current in facts:
            assert any(
                match_atom(current, candidate) is not None
                for candidate in facts
            )

    @given(atoms(), st.lists(atoms(ground=True), max_size=8))
    def test_homomorphism_images_are_facts(self, pattern, facts):
        for binding in find_homomorphisms([pattern], facts):
            image = apply_substitution(pattern, binding)
            assert image in facts


# ----------------------------------------------------------------------
# Chase properties
# ----------------------------------------------------------------------

TRANSITIVE = parse_program(
    "base: E(x, y) -> T(x, y). step: T(x, y), E(y, z) -> T(x, z).",
    name="tc", goal="T",
)

edges = st.lists(
    st.tuples(entity_names, entity_names).filter(lambda e: e[0] != e[1]),
    min_size=1, max_size=12, unique=True,
)


class TestChaseProperties:
    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_transitive_closure_is_sound_and_complete(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        result = reason(TRANSITIVE, database)
        derived = {
            (t.terms[0].value, t.terms[1].value) for t in result.answers("T")
        }
        # reference closure: reachability via at least one edge (a node on
        # a cycle reaches itself, so T(x, x) is correct there).
        successors: dict[str, set[str]] = {}
        for a, b in edge_list:
            successors.setdefault(a, set()).add(b)
        expected = set()
        for node in successors:
            frontier = list(successors[node])
            seen: set[str] = set()
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.add(current)
                expected.add((node, current))
                frontier.extend(successors.get(current, ()))
        assert derived == expected

    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_every_record_parents_in_database(self, edge_list):
        database = Database([fact("E", a, b) for a, b in edge_list])
        result = reason(TRANSITIVE, database).chase_result
        for record in result.records:
            assert record.fact in result.database
            for parent in record.parents:
                assert parent in result.database

    @settings(deadline=None, max_examples=40)
    @given(edges)
    def test_derivations_respect_step_order(self, edge_list):
        """Acyclicity: a record's parents were derived strictly earlier."""
        database = Database([fact("E", a, b) for a, b in edge_list])
        result = reason(TRANSITIVE, database).chase_result
        for record in result.records:
            for parent in record.parents:
                parent_record = result.derivation.get(parent)
                if parent_record is not None:
                    assert parent_record.index < record.index

    @settings(deadline=None, max_examples=30)
    @given(edges, edges)
    def test_chase_is_monotone(self, first_edges, second_edges):
        smaller = Database([fact("E", a, b) for a, b in first_edges])
        larger = Database(
            [fact("E", a, b) for a, b in first_edges + second_edges]
        )
        small_result = set(reason(TRANSITIVE, smaller).answers("T"))
        large_result = set(reason(TRANSITIVE, larger).answers("T"))
        assert small_result <= large_result


# ----------------------------------------------------------------------
# Aggregation properties
# ----------------------------------------------------------------------

SUM_PROGRAM = parse_program(
    "agg: In(g, v), total = sum(v) -> Out(g, total).",
    name="sums", goal="Out",
)

contributions = st.lists(
    st.tuples(
        st.sampled_from(["G1", "G2"]),
        st.integers(min_value=1, max_value=50),
    ),
    min_size=1, max_size=10, unique=True,
)


class TestAggregationProperties:
    @settings(deadline=None, max_examples=50)
    @given(contributions)
    def test_sums_match_reference(self, pairs):
        database = Database([fact("In", g, v) for g, v in pairs])
        result = reason(SUM_PROGRAM, database)
        expected = {}
        for group, value in pairs:
            expected[group] = expected.get(group, 0) + value
        derived = {
            o.terms[0].value: o.terms[1].value for o in result.answers("Out")
        }
        assert derived == expected

    @settings(deadline=None, max_examples=50)
    @given(contributions)
    def test_contributor_counts(self, pairs):
        database = Database([fact("In", g, v) for g, v in pairs])
        result = reason(SUM_PROGRAM, database).chase_result
        for record in result.records:
            group = record.fact.terms[0].value
            expected = sum(1 for g, _ in pairs if g == group)
            assert len(record.contributors) == expected


# ----------------------------------------------------------------------
# Structural analysis properties
# ----------------------------------------------------------------------

class TestStructuralProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=1000))
    def test_analysis_is_pure(self, seed):
        """The analysis depends only on the program, never on data."""
        scenario = generators.control_chain(3, seed=seed)
        analysis = StructuralAnalysis(scenario.application.program)
        assert [p.notation() for p in analysis.all_paths] == [
            p.notation()
            for p in StructuralAnalysis(scenario.application.program).all_paths
        ]

    def test_paths_never_repeat_a_rule(self, stress_analysis):
        for path in stress_analysis.all_paths:
            labels = [rule.label for rule in path.rules]
            assert len(labels) == len(set(labels))

    def test_cycles_consume_their_anchor(self, stress_analysis):
        for cycle in stress_analysis.cycles:
            assert cycle.anchor is not None
            consumed = {
                predicate
                for rule in cycle.rules
                for predicate in rule.body_predicates()
            }
            assert cycle.anchor in consumed

    def test_simple_paths_ground_out_in_edb(self, stress_analysis):
        program = stress_analysis.program
        for path in stress_analysis.simple_paths:
            heads = {rule.head_predicate for rule in path.rules}
            for rule in path.rules:
                for predicate in rule.body_predicates():
                    if program.is_intensional(predicate):
                        assert predicate in heads


# ----------------------------------------------------------------------
# Template / completeness properties
# ----------------------------------------------------------------------

class TestTemplateProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=100),
    )
    def test_control_explanations_complete_for_any_chain(self, steps, seed):
        scenario = generators.control_with_steps(steps, seed=seed)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        constants = explainer.proof_constants(scenario.target)
        assert omission_ratio(explanation.text, constants) == 0.0

    @given(st.lists(
        st.text(
            alphabet="abcdefghij0123456789", min_size=1, max_size=6
        ), min_size=1, max_size=5, unique=True,
    ))
    def test_join_values_mentions_everything(self, values):
        joined = join_values(values)
        for value in values:
            assert value in joined

    @given(st.text(alphabet="abc <>x1", max_size=50))
    def test_missing_tokens_of_identity_is_empty(self, text):
        assert missing_tokens(text, text) == frozenset()

    @given(
        st.sets(st.sampled_from(["f", "p1", "s", "c", "e"]), min_size=1),
    )
    def test_missing_tokens_detects_full_drop(self, tokens):
        original = " ".join(f"<{t}>" for t in sorted(tokens))
        assert missing_tokens(original, "nothing left") == frozenset(tokens)


class TestMeasurementProperties:
    @given(st.sets(
        st.integers(min_value=0, max_value=999).map(str),
        min_size=1, max_size=10,
    ))
    def test_completeness_of_full_text_is_one(self, constants):
        text = " ".join(sorted(constants, key=int))
        assert completeness_ratio(text, constants) == 1.0

    @given(st.sets(
        st.integers(min_value=0, max_value=999).map(str),
        min_size=1, max_size=10,
    ))
    def test_omission_of_empty_text_is_one(self, constants):
        assert omission_ratio("", constants) == 1.0

    @given(
        st.sets(
            st.integers(min_value=10, max_value=99).map(str),
            min_size=2, max_size=10,
        ),
    )
    def test_ratios_are_complementary(self, constants):
        ordered = sorted(constants)
        half_text = " ".join(ordered[: len(ordered) // 2])
        total = completeness_ratio(half_text, constants) + omission_ratio(
            half_text, constants
        )
        assert abs(total - 1.0) < 1e-12


class TestExtractTokensProperties:
    @given(st.lists(
        st.sampled_from(["f", "p1", "s", "ts", "el"]),
        min_size=0, max_size=6,
    ))
    def test_extract_finds_exactly_the_injected_tokens(self, names):
        text = "prose " + " ".join(f"<{name}> filler" for name in names)
        assert extract_tokens(text) == frozenset(names)
