"""Unit tests for derivation spines — the π of Example 4.7."""

import pytest

from repro.datalog.atoms import fact
from repro.engine.provenance import ProvenanceTracker


@pytest.fixture()
def tracker(figure8):
    __, result = figure8
    return ProvenanceTracker(result.chase_result)


class TestSpine:
    def test_rule_sequence_matches_example_4_7(self, tracker):
        spine = tracker.spine(fact("Default", "C"))
        assert spine.rule_sequence == ("alpha", "beta", "gamma", "beta", "gamma")

    def test_multi_contributor_flags(self, tracker):
        """Only the second β (Risk(C, 11) = 2 + 9) aggregates several
        inputs; the first (Risk(B, 7)) has a single debt."""
        spine = tracker.spine(fact("Default", "C"))
        assert [s.multi_contributor for s in spine.steps] == [
            False, False, False, True, False,
        ]

    def test_spine_facts_chain(self, tracker):
        spine = tracker.spine(fact("Default", "C"))
        facts = [str(step.fact) for step in spine.steps]
        assert facts == [
            "Default(A)", "Risk(B, 7)", "Default(B)", "Risk(C, 11)", "Default(C)",
        ]

    def test_spine_parent_links(self, tracker):
        spine = tracker.spine(fact("Default", "C"))
        assert spine.steps[0].spine_parent is None
        for previous, step in zip(spine.steps, spine.steps[1:]):
            assert step.spine_parent == previous.fact

    def test_spine_of_first_default(self, tracker):
        spine = tracker.spine(fact("Default", "A"))
        assert spine.rule_sequence == ("alpha",)

    def test_extensional_fact_rejected(self, tracker):
        with pytest.raises(KeyError):
            tracker.spine(fact("Shock", "A", 6))

    def test_len_and_describe(self, tracker):
        spine = tracker.spine(fact("Default", "C"))
        assert len(spine) == 5
        assert "Default(C)" in spine.describe()


class TestDepth:
    def test_edb_facts_have_depth_zero(self, tracker):
        assert tracker.depth(fact("Shock", "A", 6)) == 0

    def test_depth_grows_along_chain(self, tracker):
        assert tracker.depth(fact("Default", "A")) == 1
        assert tracker.depth(fact("Risk", "B", 7)) == 2
        assert tracker.depth(fact("Default", "C")) == 5


class TestProofRecords:
    def test_proof_size(self, tracker):
        assert tracker.proof_size(fact("Default", "C")) == 5
        assert tracker.proof_size(fact("Default", "A")) == 1

    def test_proof_constants_complete(self, tracker):
        constants = set(tracker.proof_constants(fact("Default", "C")))
        assert constants == {"A", "B", "C", "2", "5", "6", "7", "9", "10", "11"}

    def test_proof_constants_of_short_proof(self, tracker):
        constants = set(tracker.proof_constants(fact("Default", "A")))
        assert constants == {"A", "5", "6"}


class TestSideBranches:
    def test_dual_channel_step_has_side_rule(self, figure12_stress):
        """Default(F) aggregates both channels: the off-spine Risk is a
        side branch whose rule the mapping must cover (Γ4)."""
        __, result = figure12_stress
        tracker = ProvenanceTracker(result.chase_result)
        spine = tracker.spine(fact("Default", "F"))
        last = spine.steps[-1]
        assert last.rule_label == "sigma7"
        assert last.multi_contributor
        assert len(last.side_rules) == 1
        assert last.side_rules[0] in ("sigma5", "sigma6")

    def test_figure12_spine_length(self, figure12_stress):
        __, result = figure12_stress
        tracker = ProvenanceTracker(result.chase_result)
        spine = tracker.spine(fact("Default", "F"))
        assert len(spine) == 7  # 8 proof steps, one off-spine side branch
        assert tracker.proof_size(fact("Default", "F")) == 8
