"""End-to-end tests for the Explainer facade — Examples 4.7/4.8, Section 5."""

import pytest

from repro.apps import generators
from repro.core.explain import Explainer
from repro.core.validation import completeness_ratio
from repro.datalog.atoms import fact


class TestFigure8Explanation:
    def test_paths_used_match_example_47(self, figure8_explainer):
        explanation = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        )
        assert explanation.paths_used() == ("Pi2", "Gamma1")

    def test_example_48_constants_all_present(self, figure8_explainer):
        explanation = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        )
        for constant in ("A", "B", "C", "6", "5", "7", "2", "9", "11", "10"):
            assert constant in explanation.constants()

    def test_example_48_narrative_elements(self, figure8_explainer):
        text = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).text
        assert "sum of 2 and 9" in text
        assert "A is in default" in text
        assert "C is in default" in text

    def test_no_leftover_tokens(self, figure8_explainer):
        text = figure8_explainer.explain(fact("Default", "C")).text
        assert "<" not in text and ">" not in text

    def test_intermediate_fact_explained(self, figure8_explainer):
        explanation = figure8_explainer.explain(fact("Default", "A"))
        assert explanation.paths_used() == ("Pi1",)

    def test_extensional_fact_rejected(self, figure8_explainer):
        with pytest.raises(KeyError):
            figure8_explainer.explain(fact("Shock", "A", 6))

    def test_full_completeness(self, figure8_explainer):
        explanation = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        )
        constants = figure8_explainer.proof_constants(fact("Default", "C"))
        assert completeness_ratio(explanation.text, constants) == 1.0


class TestEnhancedExplanations:
    def test_enhanced_text_differs_but_keeps_constants(self, figure8, faithful_llm):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary, llm=faithful_llm)
        enhanced = explainer.explain(fact("Default", "C"), prefer_enhanced=True)
        deterministic = explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        )
        assert enhanced.text != deterministic.text
        constants = explainer.proof_constants(fact("Default", "C"))
        assert completeness_ratio(enhanced.text, constants) == 1.0

    def test_interchangeable_versions(self, figure8, faithful_llm):
        scenario, result = figure8
        explainer = Explainer(
            result, scenario.application.glossary,
            llm=faithful_llm, enhanced_versions=2,
        )
        first = explainer.explain(fact("Default", "C"), variant_index=0).text
        second = explainer.explain(fact("Default", "C"), variant_index=1).text
        assert first != second

    def test_enhancement_report_available(self, figure8, faithful_llm):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary, llm=faithful_llm)
        assert explainer.enhancement_report is not None
        assert explainer.enhancement_report.enhanced > 0


class TestDeterministicBaseline:
    def test_baseline_mentions_every_step(self, figure8_explainer):
        text = figure8_explainer.deterministic_explanation(fact("Default", "C"))
        assert text.count("Since ") == 5

    def test_baseline_is_complete(self, figure8_explainer):
        text = figure8_explainer.deterministic_explanation(fact("Default", "C"))
        constants = figure8_explainer.proof_constants(fact("Default", "C"))
        assert completeness_ratio(text, constants) == 1.0


class TestSideBranchRecursion:
    def test_independent_shock_explained_too(self):
        """Two independent shocks both feed C's default: the off-spine
        branch gets its own prepended story (extension, see explain.py)."""
        from repro.apps import stress_test
        from repro.engine import reason

        application = stress_test.build_simple()
        facts = [
            fact("Shock", "A", 9), fact("HasCapital", "A", 5),
            fact("Shock", "B", 9), fact("HasCapital", "B", 2),
            fact("Debts", "A", "C", 3), fact("Debts", "B", "C", 4),
            fact("HasCapital", "C", 6),
        ]
        result = reason(application.program, facts)
        explainer = Explainer(result, application.glossary)
        explanation = explainer.explain(fact("Default", "C"), prefer_enhanced=False)
        constants = explainer.proof_constants(fact("Default", "C"))
        assert completeness_ratio(explanation.text, constants) == 1.0
        # Both shocked entities appear in the narrative.
        assert "A" in explanation.constants()
        assert "B" in explanation.constants()

    def test_side_branches_can_be_disabled(self):
        from repro.apps import stress_test
        from repro.engine import reason

        application = stress_test.build_simple()
        facts = [
            fact("Shock", "A", 9), fact("HasCapital", "A", 5),
            fact("Shock", "B", 9), fact("HasCapital", "B", 2),
            fact("Debts", "A", "C", 3), fact("Debts", "B", "C", 4),
            fact("HasCapital", "C", 6),
        ]
        result = reason(application.program, facts)
        explainer = Explainer(result, application.glossary)
        with_sides = explainer.explain(fact("Default", "C"))
        without = explainer.explain(
            fact("Default", "C"), include_side_branches=False
        )
        assert len(without.text) <= len(with_sides.text)
        assert without.side_explanations == ()


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("steps", [1, 3, 5, 8, 13])
    def test_control_chains_fully_explained(self, steps):
        scenario = generators.control_with_steps(steps, seed=steps)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0

    @pytest.mark.parametrize("steps", [1, 3, 4, 7, 10])
    def test_stress_cascades_fully_explained(self, steps):
        scenario = generators.stress_with_steps(steps, seed=steps)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0

    def test_close_links_scenario_explained(self):
        scenario = generators.close_links_common_control(seed=4)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0
