"""Tests for the library extensions: caching, adjacency, report CLI."""

import pytest

from repro.apps import figures, generators
from repro.core import Explainer
from repro.datalog.atoms import fact


class TestExplanationCaching:
    def test_same_query_returns_cached_object(self, figure8):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary)
        first = explainer.explain(scenario.target)
        second = explainer.explain(scenario.target)
        assert first is second

    def test_different_options_not_conflated(self, figure8):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary)
        enhanced = explainer.explain(scenario.target, prefer_enhanced=True)
        deterministic = explainer.explain(scenario.target, prefer_enhanced=False)
        assert enhanced is not deterministic

    def test_different_queries_not_conflated(self, figure8):
        scenario, result = figure8
        explainer = Explainer(result, scenario.application.glossary)
        assert explainer.explain(fact("Default", "A")) is not explainer.explain(
            fact("Default", "B")
        )


class TestPathAdjacency:
    def test_simple_path_adjacent_to_cycle(self, stress_simple_analysis):
        """The Example 4.7 composition: the three-rule simple path is
        adjacent to the β/γ cycle (Default feeds β's body)."""
        simple = next(
            p for p in stress_simple_analysis.simple_paths if len(p.rules) == 3
        )
        cycle = stress_simple_analysis.cycles[0]
        assert simple.is_adjacent_to(cycle)

    def test_cycle_self_adjacent(self, stress_simple_analysis):
        cycle = stress_simple_analysis.cycles[0]
        assert cycle.is_adjacent_to(cycle)

    def test_control_paths_adjacent_to_control_cycle(self, control_analysis):
        cycle = control_analysis.cycles[0]
        for path in control_analysis.simple_paths:
            assert path.is_adjacent_to(cycle)

    def test_mapper_compositions_are_adjacent(self, figure12_stress):
        """Every consecutive pair of mapped segments satisfies the paper's
        adjacency definition."""
        scenario, result = figure12_stress
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target)
        segments = explanation.segments
        for first, second in zip(segments, segments[1:]):
            assert first.path.is_adjacent_to(second.path)

    def test_non_adjacent_paths(self):
        """A path ending in Alert cannot feed the control cycle."""
        from repro.apps import golden_powers
        from repro.core import StructuralAnalysis

        analysis = StructuralAnalysis(golden_powers.build().program)
        alert_path = next(
            p for p in analysis.simple_paths
            if p.rules[-1].head_predicate == "Alert"
        )
        control_cycle = next(
            c for c in analysis.cycles if c.anchor == "Control"
        )
        assert not alert_path.is_adjacent_to(control_cycle)


class TestReportCli:
    def test_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "rules.vada"
        program.write_text(
            "% @goal Control\n"
            "sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).\n"
        )
        data = tmp_path / "data.facts"
        data.write_text("Own(A, B, 0.7).\n")
        glossary = tmp_path / "g.json"
        glossary.write_text(
            '{"Own": {"params": ["x","y","s"], "text": "<x> owns <s> of <y>"},'
            ' "Control": {"params": ["x","y"], "text": "<x> controls <y>"}}'
        )
        code = main([
            "--program", str(program), "--data", str(data),
            "--glossary", str(glossary), "--report", "--deterministic",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert output.startswith("# Reasoning report")
        assert "## Control(A, B)" in output


class TestGeneratorRichness:
    def test_debts_per_hop_multiplies_contributions(self):
        scenario = generators.stress_cascade(2, seed=1, debts_per_hop=3)
        result = scenario.run()
        risk_records = [
            r for r in result.chase_result.records
            if r.fact.predicate == "Risk"
        ]
        assert all(len(r.contributors) == 3 for r in risk_records)
        # proof length unchanged by splitting the loans
        assert result.proof_size(scenario.target) == scenario.expected_steps

    def test_debts_per_hop_validation(self):
        with pytest.raises(ValueError):
            generators.stress_cascade(2, debts_per_hop=0)

    def test_rich_cascade_explained_with_dashed_variants(self):
        from repro.core import completeness_ratio

        scenario = generators.stress_with_steps(7, seed=2, debts_per_hop=2)
        result = scenario.run()
        explainer = Explainer(result, scenario.application.glossary)
        explanation = explainer.explain(scenario.target, prefer_enhanced=False)
        assert any(segment.path.multi_rules for segment in explanation.segments)
        constants = explainer.proof_constants(scenario.target)
        assert completeness_ratio(explanation.text, constants) == 1.0
