"""Unit tests for the chase procedure — paper Section 3 and Figure 8."""

import pytest

from repro.datalog.atoms import fact
from repro.datalog.parser import parse_program
from repro.datalog.terms import Null
from repro.engine.chase import ChaseEngine, ChaseError, chase
from repro.engine.database import Database


def run(program_text, facts, goal=None, name="p"):
    program = parse_program(program_text, name=name, goal=goal)
    return chase(program, Database(facts))


class TestPlainRules:
    def test_single_application(self):
        result = run("P(x) -> Q(x).", [fact("P", "A")])
        assert fact("Q", "A") in result.database

    def test_transitive_closure(self):
        result = run(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            """,
            [fact("E", "A", "B"), fact("E", "B", "C"), fact("E", "C", "D")],
        )
        assert fact("T", "A", "D") in result.database
        assert len(result.facts("T")) == 6

    def test_conditions_filter(self):
        result = run(
            "Own(x, y, s), s > 0.5 -> Control(x, y).",
            [fact("Own", "A", "B", 0.6), fact("Own", "A", "C", 0.3)],
        )
        assert result.facts("Control") == (fact("Control", "A", "B"),)

    def test_no_duplicate_records(self):
        result = run(
            "P(x) -> Q(x). R(x) -> Q(x).",
            [fact("P", "A"), fact("R", "A")],
        )
        # Q(A) derivable twice but only derived once.
        assert len([r for r in result.records if r.fact == fact("Q", "A")]) == 1

    def test_input_database_not_modified(self):
        program = parse_program("P(x) -> Q(x).", name="p")
        database = Database([fact("P", "A")])
        chase(program, database)
        assert len(database) == 1

    def test_fixpoint_rounds_recorded(self):
        result = run("P(x) -> Q(x).", [fact("P", "A")])
        assert result.rounds == 2  # one productive round + one empty


class TestProvenanceRecords:
    def test_record_carries_rule_and_parents(self):
        result = run("P(x), R(x) -> Q(x).", [fact("P", "A"), fact("R", "A")])
        record = result.record_for(fact("Q", "A"))
        assert record.rule_label == "r1"
        assert set(record.parents) == {fact("P", "A"), fact("R", "A")}

    def test_record_for_edb_fact_raises(self):
        result = run("P(x) -> Q(x).", [fact("P", "A")])
        with pytest.raises(KeyError):
            result.record_for(fact("P", "A"))

    def test_is_derived(self):
        result = run("P(x) -> Q(x).", [fact("P", "A")])
        assert result.is_derived(fact("Q", "A"))
        assert not result.is_derived(fact("P", "A"))

    def test_step_indices_are_sequential(self):
        result = run(
            "E(x, y) -> T(x, y). T(x, y), E(y, z) -> T(x, z).",
            [fact("E", "A", "B"), fact("E", "B", "C")],
        )
        assert [record.index for record in result.records] == list(
            range(len(result.records))
        )


class TestAggregates:
    def test_sum_over_group(self):
        result = run(
            "beta: Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).",
            [
                fact("Default", "B"),
                fact("Debts", "B", "C", 2),
                fact("Debts", "B", "C", 9),
            ],
        )
        assert result.facts("Risk") == (fact("Risk", "C", 11),)
        record = result.record_for(fact("Risk", "C", 11))
        assert record.multi_contributor
        assert record.aggregate_value == 11

    def test_single_contributor_not_multi(self):
        result = run(
            "beta: Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).",
            [fact("Default", "B"), fact("Debts", "B", "C", 7)],
        )
        record = result.record_for(fact("Risk", "C", 7))
        assert not record.multi_contributor

    def test_groups_are_independent(self):
        result = run(
            "beta: Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).",
            [
                fact("Default", "B"),
                fact("Debts", "B", "C", 2),
                fact("Debts", "B", "D", 9),
            ],
        )
        assert set(result.facts("Risk")) == {
            fact("Risk", "C", 2), fact("Risk", "D", 9),
        }

    def test_post_condition_filters_groups(self):
        result = run(
            "sigma3h: Own(z, y, s), ts = sum(s), ts > 0.5 -> Majority(y).",
            [
                fact("Own", "A", "T", 0.3),
                fact("Own", "B", "T", 0.3),
                fact("Own", "A", "U", 0.2),
            ],
        )
        assert result.facts("Majority") == (fact("Majority", "T"),)

    def test_post_condition_with_body_variable(self):
        """σ7's shape: the condition compares the aggregate against a body
        variable (the capital), which must join the grouping key."""
        result = run(
            """
            sigma7: Risk(c, e, t), HasCapital(c, p2), l = sum(e), l > p2
                    -> Default(c).
            """,
            [
                fact("Risk", "F", 8, "short"),
                fact("Risk", "F", 2, "long"),
                fact("HasCapital", "F", 9),
                fact("Risk", "G", 3, "long"),
                fact("HasCapital", "G", 9),
            ],
        )
        assert result.facts("Default") == (fact("Default", "F"),)

    def test_monotonic_supersession(self):
        """When recursion grows an aggregate, the refreshed fact replaces
        the stale one for further matching but both stay in the chase."""
        result = run(
            """
            alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
            """,
            [
                fact("Shock", "A", 9), fact("HasCapital", "A", 5),
                fact("Shock", "B", 9), fact("HasCapital", "B", 2),
                fact("Debts", "A", "C", 3),
                fact("Debts", "B", "C", 4),
                fact("HasCapital", "C", 6),
            ],
        )
        # Depending on rounds, Risk(C) may appear with partial sums; the
        # final active fact must be the total.
        active = result.facts("Risk")
        assert fact("Risk", "C", 7) in active
        assert all(r.terms[1].value == 7 for r in active)
        assert fact("Default", "C") in result.database

    def test_superseded_facts_remain_in_database(self):
        result = run(
            """
            alpha: Seed(d) -> Default(d).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: Risk(c, e), Threshold(c, p), e > p -> Default(c).
            """,
            [
                fact("Seed", "A"),
                fact("Debts", "A", "B", 5),
                fact("Threshold", "B", 3),
                fact("Debts", "B", "C", 2),
                fact("Threshold", "C", 1),
                fact("Debts", "C", "B", 4),
            ],
        )
        # B's risk grows from 5 to 9 once C defaults back into B.
        all_risks = result.facts("Risk", include_superseded=True)
        active = result.facts("Risk")
        assert fact("Risk", "B", 9) in active
        assert fact("Risk", "B", 5) in all_risks
        assert fact("Risk", "B", 5) not in active


class TestExistentials:
    def test_fresh_null_invented(self):
        result = run("Person(x) -> HasParent(x, z).", [fact("Person", "A")])
        derived = result.facts("HasParent")
        assert len(derived) == 1
        assert isinstance(derived[0].terms[1], Null)

    def test_restricted_chase_skips_satisfied_heads(self):
        result = run(
            "Person(x) -> HasParent(x, z).",
            [fact("Person", "A"), fact("HasParent", "A", "B")],
        )
        assert result.facts("HasParent") == (fact("HasParent", "A", "B"),)

    def test_termination_with_recursive_existentials(self):
        # Person -> HasParent(x, z); the parent is not a Person, so the
        # restricted chase stops after one invention per person.
        result = run(
            "Person(x) -> HasParent(x, z).",
            [fact("Person", "A"), fact("Person", "B")],
        )
        assert len(result.facts("HasParent")) == 2


class TestTermination:
    def test_round_limit_raises(self):
        program = parse_program(
            "N(x), Succ(x, y) -> N(y).", name="count"
        )
        database = Database(
            [fact("N", 0)] + [fact("Succ", i, i + 1) for i in range(50)]
        )
        with pytest.raises(ChaseError):
            ChaseEngine(max_rounds=5).run(program, database)

    def test_figure8_instance_terminates_in_few_rounds(self):
        result = run(
            """
            alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
            """,
            [
                fact("Shock", "A", 6), fact("HasCapital", "A", 5),
                fact("HasCapital", "B", 2), fact("HasCapital", "C", 10),
                fact("Debts", "A", "B", 7),
                fact("Debts", "B", "C", 2), fact("Debts", "B", "C", 9),
            ],
        )
        assert fact("Default", "C") in result.database
        assert result.rounds <= 5
        assert result.step_count() == 5
