"""Unit tests for the join planner (plan construction, not execution)."""

import pytest

from repro.datalog import fact, parse_program
from repro.datalog.analysis import (
    atom_binding_profile,
    canonical_binding_order,
)
from repro.datalog.terms import Variable
from repro.engine import Database, execute_rule_plan, plan_rule
from repro.engine.planner import plan_conjunction


def v(name):
    return Variable(name)


def _rule(text, **kwargs):
    program = parse_program(text, name=kwargs.pop("name", "p"), **kwargs)
    return program.rules[0]


class TestCanonicalBindingOrder:
    def test_body_order_first_seen(self):
        rule = _rule("r: A(x, y), B(y, z) -> C(x, z).", goal="C")
        assert canonical_binding_order(rule) == (v("x"), v("y"), v("z"))

    def test_assignment_targets_after_body(self):
        rule = _rule("r: A(x, s), w = s * 2 -> C(x, w).", goal="C")
        assert canonical_binding_order(rule) == (v("x"), v("s"), v("w"))


class TestBindingProfile:
    def test_counts(self):
        rule = _rule('r: Own(x, "B", s) -> C(x).', goal="C")
        atom = rule.body[0]
        assert atom_binding_profile(atom, set()) == (1, 0, 2)
        assert atom_binding_profile(atom, {v("x")}) == (1, 1, 1)


class TestAtomOrdering:
    def test_constant_atom_goes_first(self):
        """A constant-bearing atom beats a free atom of any cardinality."""
        rule = _rule(
            'r: Edge(x, y), Flag(y, "hot") -> Out(x, y).', goal="Out"
        )
        database = Database(
            [fact("Edge", f"N{i}", f"N{i+1}") for i in range(5)]
            + [fact("Flag", "N3", "hot")]
        )
        plan = plan_rule(rule, database).full
        assert plan.order == (1, 0)
        # And the inverse permutation restores body positions.
        assert plan.step_of_atom == (1, 0)

    def test_cardinality_breaks_ties(self):
        """Two free atoms: the smaller relation is scanned first."""
        rule = _rule("r: Big(x, y), Small(y, z) -> Out(x, z).", goal="Out")
        database = Database(
            [fact("Big", f"A{i}", f"B{i}") for i in range(10)]
            + [fact("Small", "B1", "C1")]
        )
        plan = plan_rule(rule, database).full
        assert plan.order == (1, 0)

    def test_body_position_is_final_tiebreak(self):
        rule = _rule("r: P(x, y), Q(y, z) -> Out(x, z).", goal="Out")
        database = Database([fact("P", "A", "B"), fact("Q", "B", "C")])
        plan = plan_rule(rule, database).full
        assert plan.order == (0, 1)

    def test_bound_variables_raise_selectivity(self):
        """After the first atom binds x and y, the atom sharing both
        variables outranks the disconnected one."""
        rule = _rule(
            "r: Seed(x, y), Other(a, b), Link(x, y) -> Out(x, a).",
            goal="Out",
        )
        database = Database([
            fact("Seed", "A", "B"), fact("Other", "C", "D"),
            fact("Link", "A", "B"),
        ])
        plan = plan_rule(rule, database).full
        assert plan.order[0] == 0
        assert plan.order[1] == 2  # Link probes both bound positions.

    def test_delta_variant_pivot_forced_first(self):
        rule = _rule("r: T(x, y), E(y, z) -> T(x, z).", goal="T")
        database = Database([fact("E", "A", "B")])
        rule_plan = plan_rule(rule, database)
        assert len(rule_plan.delta_variants) == 2
        for pivot, variant in enumerate(rule_plan.delta_variants):
            assert variant.pivot == pivot
            assert variant.order[0] == pivot

    def test_aggregate_rules_have_no_delta_variants(self):
        rule = _rule(
            "r: Own(x, y, s), t = sum(s) -> IntOwn(x, y, t).",
            goal="IntOwn",
        )
        rule_plan = plan_rule(rule, Database([]))
        assert rule_plan.delta_variants == ()


class TestHoisting:
    def test_condition_hoisted_to_earliest_step(self):
        """s > 0.5 only needs the first atom; it must not wait for the
        second join."""
        rule = _rule(
            "r: Own(x, y, s), Listed(y), s > 0.5 -> C(x, y).", goal="C"
        )
        database = Database([
            fact("Own", "A", "B", 0.7), fact("Listed", "B"),
        ])
        plan = plan_rule(rule, database).full
        own_step = plan.steps[plan.step_of_atom[0]]
        assert len(own_step.conditions) == 1
        assert plan.hoisted_conditions == (
            1 if plan.step_of_atom[0] < len(plan.steps) - 1 else 0
        )

    def test_assignment_hoisted_and_unlocks_condition(self):
        rule = _rule(
            "r: Own(x, y, s), Listed(y), w = s * 2, w > 1.0 -> C(x, w).",
            goal="C",
        )
        database = Database([
            fact("Own", "A", "B", 0.7), fact("Listed", "B"),
        ])
        plan = plan_rule(rule, database).full
        own_step = plan.steps[plan.step_of_atom[0]]
        assert len(own_step.assignments) == 1
        assert len(own_step.conditions) == 1

    def test_negation_hoisted_when_bound(self):
        rule = _rule(
            "r: Node(x), Node(y), not E(x, y) -> Sep(x, y).", goal="Sep"
        )
        database = Database([fact("Node", "A"), fact("Node", "B")])
        plan = plan_rule(rule, database).full
        assert sum(len(step.negated) for step in plan.steps) == 1
        # The negated check needs both x and y: it sits on the last step.
        assert len(plan.steps[-1].negated) == 1

    def test_repeated_variable_becomes_check(self):
        rule = _rule("r: Self(x, x) -> Out(x).", goal="Out")
        database = Database([fact("Self", "A", "A"), fact("Self", "A", "B")])
        plan = plan_rule(rule, database).full
        step = plan.steps[0]
        assert len(step.bind_positions) == 1
        assert len(step.check_positions) == 1

    def test_constants_become_probe_positions(self):
        rule = _rule('r: Flag(x, "hot") -> Out(x).', goal="Out")
        plan = plan_rule(rule, Database([])).full
        step = plan.steps[0]
        assert step.probe_positions == (1,)
        assert step.bind_positions == ((0, v("x")),)


class TestPlanExecution:
    def test_executor_matches_all_homomorphisms(self):
        rule = _rule("r: E(x, y), E(y, z) -> T(x, z).", goal="T")
        database = Database([
            fact("E", "A", "B"), fact("E", "B", "C"), fact("E", "B", "D"),
        ])
        rule_plan = plan_rule(rule, database)
        matches = execute_rule_plan(rule_plan, database, frozenset())
        parents = [used for _binding, used in matches]
        assert parents == [
            (fact("E", "A", "B"), fact("E", "B", "C")),
            (fact("E", "A", "B"), fact("E", "B", "D")),
        ]

    def test_matches_sorted_in_naive_order(self):
        """Even when the plan reverses the body, parents come back in
        body order and matches in naive (insertion-lexicographic) order."""
        rule = _rule(
            'r: Edge(x, y), Flag(y, "hot") -> Out(x, y).', goal="Out"
        )
        database = Database([
            fact("Edge", "A", "H"), fact("Edge", "B", "H"),
            fact("Flag", "H", "hot"),
        ])
        rule_plan = plan_rule(rule, database)
        assert rule_plan.full.order == (1, 0)
        matches = execute_rule_plan(rule_plan, database, frozenset())
        assert [used for _b, used in matches] == [
            (fact("Edge", "A", "H"), fact("Flag", "H", "hot")),
            (fact("Edge", "B", "H"), fact("Flag", "H", "hot")),
        ]

    def test_bindings_serialized_in_canonical_order(self):
        rule = _rule(
            'r: Edge(x, y), Flag(y, "hot") -> Out(x, y).', goal="Out"
        )
        database = Database([
            fact("Edge", "A", "H"), fact("Flag", "H", "hot"),
        ])
        matches = execute_rule_plan(
            plan_rule(rule, database), database, frozenset()
        )
        binding, _used = matches[0]
        assert list(binding) == [v("x"), v("y")]

    def test_delta_execution_dedups_multi_delta_matches(self):
        rule = _rule("r: P(x, y), P(y, z) -> Q(x, z).", goal="Q")
        database = Database([fact("P", "A", "B"), fact("P", "B", "C")])
        rule_plan = plan_rule(rule, database)
        delta = {"P": [fact("P", "A", "B"), fact("P", "B", "C")]}
        matches = execute_rule_plan(rule_plan, database, frozenset(), delta)
        assert len(matches) == 1

    def test_delta_execution_skips_untouched_pivots(self):
        rule = _rule("r: A(x), B(x) -> C(x).", goal="C")
        database = Database([fact("A", "X"), fact("B", "X")])
        rule_plan = plan_rule(rule, database)
        matches = execute_rule_plan(
            rule_plan, database, frozenset(), {"Unrelated": []}
        )
        assert matches == []

    def test_stats_accumulate(self):
        rule = _rule("r: E(x, y), E(y, z) -> T(x, z).", goal="T")
        database = Database([fact("E", "A", "B"), fact("E", "B", "C")])
        stats = {}
        execute_rule_plan(
            plan_rule(rule, database), database, frozenset(), stats=stats
        )
        assert stats["matches"] == 1
        assert stats["probes"] >= 2
        assert stats["scanned"] >= 2


class TestPlanDescription:
    def test_describe_mentions_every_step(self):
        rule = _rule(
            "r: Own(x, y, s), Listed(y), s > 0.5 -> C(x, y).", goal="C"
        )
        plan = plan_rule(rule, Database([])).full
        text = plan.describe()
        assert "Own" in text and "Listed" in text and "cond" in text

    def test_snapshot_fields(self):
        rule = _rule("r: T(x, y), E(y, z) -> T(x, z).", goal="T")
        snapshot = plan_rule(rule, Database([])).snapshot()
        assert set(snapshot) >= {
            "order", "steps", "hoisted_conditions",
            "hoisted_assignments", "delta_variants", "plan",
        }
        assert snapshot["steps"] == 2
        assert snapshot["delta_variants"] == 2


class TestPlanConjunctionValidation:
    def test_pivot_out_of_range_rejected(self):
        rule = _rule("r: A(x) -> B(x).", goal="B")
        with pytest.raises((IndexError, ValueError)):
            plan_conjunction(rule, Database([]), rule.conditions, pivot=5)
