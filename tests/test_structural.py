"""Structural-analysis tests pinning the paper's Figures 4, 5 and 10."""

import pytest

from repro.core.structural import StructuralAnalysis, StructuralAnalysisError
from repro.datalog.parser import parse_program


def label_sets(paths):
    return {frozenset(path.labels) for path in paths}


class TestSimplifiedStressTest:
    """Example 4.3: Figures 4 and 5."""

    def test_critical_node_is_default_only(self, stress_simple_analysis):
        assert stress_simple_analysis.critical_nodes == frozenset({"Default"})

    def test_simple_paths_match_figure4(self, stress_simple_analysis):
        assert label_sets(stress_simple_analysis.simple_paths) == {
            frozenset({"alpha"}),
            frozenset({"alpha", "beta", "gamma"}),
        }

    def test_cycle_matches_figure4(self, stress_simple_analysis):
        assert label_sets(stress_simple_analysis.cycles) == {
            frozenset({"beta", "gamma"}),
        }

    def test_aggregation_variants_match_figure5(self, stress_simple_analysis):
        """The β-containing path and cycle each gain one dashed variant."""
        three_rule = next(
            p for p in stress_simple_analysis.simple_paths if len(p.rules) == 3
        )
        assert three_rule.has_aggregation_variants
        variants = list(three_rule.variants())
        assert len(variants) == 2
        assert {v.multi_rules for v in variants} == {
            frozenset(), frozenset({"beta"}),
        }

    def test_single_rule_path_has_no_variant(self, stress_simple_analysis):
        alpha_path = next(
            p for p in stress_simple_analysis.simple_paths if len(p.rules) == 1
        )
        assert not alpha_path.has_aggregation_variants
        assert len(list(alpha_path.variants())) == 1


class TestCompanyControlFigure10:
    def test_simple_paths(self, control_analysis):
        assert label_sets(control_analysis.simple_paths) == {
            frozenset({"sigma1"}),
            frozenset({"sigma2"}),
            frozenset({"sigma1", "sigma3"}),
            frozenset({"sigma2", "sigma3"}),
            frozenset({"sigma1", "sigma2", "sigma3"}),
        }

    def test_cycle(self, control_analysis):
        assert label_sets(control_analysis.cycles) == {frozenset({"sigma3"})}

    def test_joint_path_forces_multi_aggregation(self, control_analysis):
        joint = next(
            p for p in control_analysis.simple_paths if len(p.rules) == 3
        )
        assert joint.forced_multi == frozenset({"sigma3"})

    def test_starred_paths(self, control_analysis):
        """Fig. 10 stars the σ3-containing paths (aggregation versions)."""
        starred = {
            frozenset(p.labels)
            for p in control_analysis.simple_paths
            if p.has_aggregation_variants
        }
        assert starred == {
            frozenset({"sigma1", "sigma3"}),
            frozenset({"sigma2", "sigma3"}),
        }


class TestStressTestFigure10:
    def test_simple_paths(self, stress_analysis):
        assert label_sets(stress_analysis.simple_paths) == {
            frozenset({"sigma4"}),
            frozenset({"sigma4", "sigma5", "sigma7"}),
            frozenset({"sigma4", "sigma6", "sigma7"}),
            frozenset({"sigma4", "sigma5", "sigma6", "sigma7"}),
        }

    def test_cycles(self, stress_analysis):
        assert label_sets(stress_analysis.cycles) == {
            frozenset({"sigma5", "sigma7"}),
            frozenset({"sigma6", "sigma7"}),
            frozenset({"sigma5", "sigma6", "sigma7"}),
        }

    def test_critical_nodes(self, stress_analysis):
        assert stress_analysis.critical_nodes == frozenset({"Default"})

    def test_joint_channel_forces_sigma7_multi(self, stress_analysis):
        joint = next(
            c for c in stress_analysis.cycles if len(c.rules) == 3
        )
        assert "sigma7" in joint.forced_multi

    def test_cycles_anchor_at_default(self, stress_analysis):
        assert all(c.anchor == "Default" for c in stress_analysis.cycles)


class TestCloseLinks:
    def test_two_critical_nodes(self, close_links_app):
        analysis = StructuralAnalysis(close_links_app.program)
        assert analysis.critical_nodes == frozenset({"Control", "CloseLink"})

    def test_control_cycle_exists(self, close_links_app):
        analysis = StructuralAnalysis(close_links_app.program)
        assert frozenset({"sigma3"}) in label_sets(analysis.cycles)

    def test_critical_to_critical_cycles(self, close_links_app):
        """Cycles may connect Control to CloseLink (two critical nodes)."""
        analysis = StructuralAnalysis(close_links_app.program)
        cycle_sets = label_sets(analysis.cycles)
        assert frozenset({"lambda2"}) in cycle_sets
        assert frozenset({"lambda3"}) in cycle_sets


class TestNamingAndLookup:
    def test_names_are_sequential(self, control_analysis):
        names = [p.name for p in control_analysis.simple_paths]
        assert names == [f"Pi{i + 1}" for i in range(len(names))]

    def test_cycle_names(self, stress_analysis):
        names = [c.name for c in stress_analysis.cycles]
        assert names == [f"Gamma{i + 1}" for i in range(len(names))]

    def test_path_by_name(self, control_analysis):
        assert control_analysis.path_by_name("Pi1").name == "Pi1"
        with pytest.raises(KeyError):
            control_analysis.path_by_name("Pi99")

    def test_all_variants_superset_of_paths(self, stress_analysis):
        assert len(stress_analysis.all_variants) >= len(stress_analysis.all_paths)

    def test_describe_contains_notation(self, control_analysis):
        text = control_analysis.describe()
        assert "σ1" in text and "critical nodes" in text


class TestPreconditions:
    def test_goal_required(self):
        program = parse_program("P(x) -> Q(x).", name="p")
        with pytest.raises(StructuralAnalysisError):
            StructuralAnalysis(program)

    def test_determinism(self, stress_app):
        first = StructuralAnalysis(stress_app.program)
        second = StructuralAnalysis(stress_app.program)
        assert [p.notation() for p in first.all_paths] == [
            p.notation() for p in second.all_paths
        ]
