"""Unit tests for the domain glossary — paper Figures 7 and 11."""

import pytest

from repro.core.glossary import DomainGlossary, GlossaryEntry
from repro.datalog.atoms import Atom
from repro.datalog.errors import GlossaryError
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable


class TestEntryValidation:
    def test_valid_entry(self):
        entry = GlossaryEntry("Shock", ("f", "s"), "a shock of <s> affects <f>")
        assert entry.arity == 2

    def test_undeclared_token_rejected(self):
        with pytest.raises(GlossaryError):
            GlossaryEntry("Shock", ("f",), "a shock of <s> affects <f>")

    def test_unused_parameter_rejected(self):
        with pytest.raises(GlossaryError):
            GlossaryEntry("Shock", ("f", "s"), "something affects <f>")

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(GlossaryError):
            GlossaryEntry("P", ("x", "x"), "<x> and <x>")


class TestRendering:
    ENTRY = GlossaryEntry(
        "HasCapital", ("f", "p"),
        "<f> is a financial institution with capital of <p>",
    )

    def test_render_with_strings(self):
        text = self.ENTRY.render({"f": "A", "p": "5"})
        assert text == "A is a financial institution with capital of 5"

    def test_render_with_tokens(self):
        text = self.ENTRY.render({"f": "<c>", "p": "<p2>"})
        assert text == "<c> is a financial institution with capital of <p2>"

    def test_render_missing_replacement(self):
        with pytest.raises(GlossaryError):
            self.ENTRY.render({"f": "A"})

    def test_render_atom_positional(self):
        atom = Atom("HasCapital", (Variable("c"), Variable("p2")))
        text = self.ENTRY.render_atom(atom, {0: "<c>", 1: "<p2>"})
        assert "<c>" in text and "<p2>" in text

    def test_render_atom_arity_mismatch(self):
        atom = Atom("HasCapital", (Variable("c"),))
        with pytest.raises(GlossaryError):
            self.ENTRY.render_atom(atom, {0: "<c>"})

    def test_repeated_parameter_occurrences(self):
        entry = GlossaryEntry("Loop", ("x",), "<x> points to <x>")
        assert entry.render({"x": "A"}) == "A points to A"


class TestGlossaryCollection:
    def test_define_and_lookup(self):
        glossary = DomainGlossary()
        glossary.define("Default", ["f"], "<f> is in default")
        assert glossary.entry("Default").predicate == "Default"
        assert "Default" in glossary
        assert len(glossary) == 1

    def test_duplicate_entry_rejected(self):
        glossary = DomainGlossary()
        glossary.define("Default", ["f"], "<f> is in default")
        with pytest.raises(GlossaryError):
            glossary.define("Default", ["f"], "<f> fails")

    def test_missing_entry_raises(self):
        with pytest.raises(GlossaryError):
            DomainGlossary().entry("Missing")

    def test_describe_sorted(self):
        glossary = DomainGlossary()
        glossary.define("B", ["x"], "<x> b")
        glossary.define("A", ["x"], "<x> a")
        text = glossary.describe()
        assert text.index("A(") < text.index("B(")


class TestProgramValidation:
    PROGRAM = parse_program(
        "sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).",
        name="cc", goal="Control",
    )

    def test_complete_glossary_passes(self):
        glossary = DomainGlossary()
        glossary.define("Own", ["x", "y", "s"], "<x> owns <s> of <y>")
        glossary.define("Control", ["x", "y"], "<x> controls <y>")
        glossary.validate_against(self.PROGRAM)

    def test_missing_predicate_fails(self):
        glossary = DomainGlossary()
        glossary.define("Own", ["x", "y", "s"], "<x> owns <s> of <y>")
        with pytest.raises(GlossaryError):
            glossary.validate_against(self.PROGRAM)

    def test_arity_mismatch_fails(self):
        glossary = DomainGlossary()
        glossary.define("Own", ["x", "y"], "<x> owns <y>")
        glossary.define("Control", ["x", "y"], "<x> controls <y>")
        with pytest.raises(GlossaryError):
            glossary.validate_against(self.PROGRAM)


class TestPaperGlossaries:
    def test_figure7_glossary_covers_simple_stress(self, stress_simple_app):
        stress_simple_app.glossary.validate_against(stress_simple_app.program)

    def test_figure11_glossary_covers_full_stress(self, stress_app):
        stress_app.glossary.validate_against(stress_app.program)

    def test_figure11_glossary_covers_control(self, control_app):
        control_app.glossary.validate_against(control_app.program)

    def test_close_links_glossary(self, close_links_app):
        close_links_app.glossary.validate_against(close_links_app.program)
