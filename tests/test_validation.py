"""Unit tests for completeness and token-presence checks (§4.4, §6.3)."""

from repro.core.validation import (
    completeness_ratio,
    constants_omitted,
    constants_present,
    missing_tokens,
    omission_ratio,
    tokens_preserved,
)


class TestTokenGuard:
    def test_all_tokens_preserved(self):
        original = "since <f> has <p1>, then <f> defaults"
        candidate = "<f> defaults because its capital <p1> is gone"
        assert tokens_preserved(original, candidate)
        assert missing_tokens(original, candidate) == frozenset()

    def test_dropped_token_detected(self):
        original = "since <f> has <p1>, then <f> defaults"
        candidate = "<f> defaults"
        assert not tokens_preserved(original, candidate)
        assert missing_tokens(original, candidate) == frozenset({"p1"})

    def test_extra_tokens_allowed(self):
        assert tokens_preserved("<a>", "<a> and <b>")


class TestConstantPresence:
    TEXT = "A owes 7 million to B; B has capital of 2 and total debts of 17."

    def test_entities_found(self):
        assert constants_present(self.TEXT, ["A", "B"]) == frozenset({"A", "B"})

    def test_number_boundaries(self):
        """'7' must be found, but not inside '17'."""
        assert constants_present("total is 17", ["7"]) == frozenset()
        assert constants_present("exactly 7 units", ["7"]) == frozenset({"7"})

    def test_decimal_boundaries(self):
        assert constants_present("share of 0.55 held", ["0.55"]) == frozenset(
            {"0.55"}
        )
        assert constants_present("share of 0.555 held", ["0.55"]) == frozenset()

    def test_entity_boundaries(self):
        assert constants_present("IrishBanking corp", ["IrishBank"]) == frozenset()
        assert constants_present("IrishBank corp", ["IrishBank"]) == frozenset(
            {"IrishBank"}
        )

    def test_omitted(self):
        assert constants_omitted(self.TEXT, ["A", "Z"]) == frozenset({"Z"})


class TestRatios:
    def test_full_completeness(self):
        assert completeness_ratio("A pays 7 to B", ["A", "7", "B"]) == 1.0
        assert omission_ratio("A pays 7 to B", ["A", "7", "B"]) == 0.0

    def test_partial(self):
        assert completeness_ratio("A pays B", ["A", "7", "B"]) == 2 / 3
        assert abs(omission_ratio("A pays B", ["A", "7", "B"]) - 1 / 3) < 1e-12

    def test_empty_constant_set(self):
        assert completeness_ratio("anything", []) == 1.0
        assert omission_ratio("anything", []) == 0.0

    def test_template_explanations_never_omit(self, figure8_explainer):
        """The paper's structural claim: templates carry all constants by
        construction (tokens), so omission is exactly zero."""
        from repro.datalog.atoms import fact

        for entity in ("A", "B", "C"):
            target = fact("Default", entity)
            explanation = figure8_explainer.explain(target, prefer_enhanced=False)
            constants = figure8_explainer.proof_constants(target)
            assert omission_ratio(explanation.text, constants) == 0.0
