"""Shard-parallel chase: partition analysis, determinism, fallbacks.

The contract under test (DESIGN.md §14): ``strategy="parallel"``
partitions the EDB by weakly-connected component, runs the planned
kernels per shard, and merges to a :class:`ChaseResult` byte-identical
to single-shard ``planned`` — or falls back to single-shard (with the
``engine.parallel_fallback`` counter) rather than risk a wrong answer.
"""

from __future__ import annotations

import pytest

from repro.apps.figures import (
    figure8_instance,
    figure12_control_instance,
    figure12_stress_instance,
    figure15_instance,
)
from repro.apps.generators import (
    close_links_common_control,
    control_with_steps,
    stress_with_steps,
)
from repro.datalog.atoms import Atom, fact
from repro.datalog.conditions import Comparison
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine import (
    ChaseEngine,
    Database,
    analyze_program,
    partition_database,
)
from repro.obs.metrics import MetricsRegistry
from repro import obs


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------

def _suffix(term, copy: int):
    if isinstance(term, Constant) and isinstance(term.value, str):
        return Constant(f"{term.value}@{copy}")
    return term


def union_of(instance_factory, copies: int):
    """Disjoint union of ``copies`` renamed copies of one scenario.

    String constants get a ``@<copy>`` suffix, so the copies share no
    entities and the EDB decomposes into ``copies`` weakly-connected
    components.
    """
    base = instance_factory()
    facts = []
    for copy in range(copies):
        for f in base.database.facts():
            facts.append(
                Atom(f.predicate, tuple(_suffix(t, copy) for t in f.terms))
            )
    return base.application.program, Database(facts)


def _result_signature(result):
    """Everything parity means: records, order, stats, violations."""
    return (
        tuple(
            (
                record.index,
                record.round,
                record.rule.label,
                str(record.fact),
                tuple(str(parent) for parent in record.parents),
                tuple(
                    (str(contribution.value),
                     tuple(str(f) for f in contribution.facts))
                    for contribution in record.contributors
                ),
            )
            for record in result.records
        ),
        tuple(str(f) for f in result.database.facts()),
        result.stats.rounds,
        tuple(result.stats.rounds_per_stratum),
        tuple(result.stats.delta_sizes),
        dict(result.stats.rule_firings),
        tuple(
            (v.constraint.label, tuple(str(w) for w in v.witnesses))
            for v in result.violations
        ),
        tuple(sorted((str(f) for f in result.superseded))),
    )


def assert_parity(program, database, processes=None):
    planned = ChaseEngine(strategy="planned").run(program, database.copy())
    parallel = ChaseEngine(strategy="parallel", processes=processes).run(
        program, database.copy()
    )
    assert _result_signature(planned) == _result_signature(parallel)
    return parallel


# ----------------------------------------------------------------------
# Analysis verdicts
# ----------------------------------------------------------------------

class TestAnalysis:
    def test_bundled_apps_are_shardable(self):
        for factory in (
            figure8_instance, figure12_stress_instance,
            figure12_control_instance, figure15_instance,
            close_links_common_control,
            lambda: control_with_steps(4),
            lambda: stress_with_steps(4),
        ):
            instance = factory()
            analysis = analyze_program(
                instance.application.program, instance.database
            )
            assert analysis.shardable, analysis.reasons

    def test_stress_tag_constants_in_heads_are_safe(self):
        # sigma5/sigma6 derive Risk(c, el, "long"/"short"): the tag
        # constant rides along with an entity variable, which the
        # three-sort analysis must accept.
        instance = stress_with_steps(3)
        analysis = analyze_program(
            instance.application.program, instance.database
        )
        assert analysis.shardable
        assert analysis.tag_positions or analysis.data_positions

    def test_existential_rule_is_unshardable(self):
        rule = Rule(
            label="r1",
            body=(Atom.of("Edge", Variable("x"), Variable("y")),),
            head=Atom.of("Blank", Variable("x"), Variable("z")),
        )
        program = Program(name="p", rules=(rule,), goal="Blank")
        database = Database([fact("Edge", "a", "b")])
        analysis = analyze_program(program, database)
        assert not analysis.shardable
        assert any("existential" in reason for reason in analysis.reasons)

    def test_headless_entity_rule_is_unshardable(self):
        # A head holding only a data variable would derive the same fact
        # in every shard the value reaches — duplicate derivations.
        rule = Rule(
            label="r1",
            body=(Atom.of("Owns", Variable("x"), Variable("w")),),
            head=Atom.of("Weight", Variable("w")),
        )
        program = Program(name="p", rules=(rule,), goal="Weight")
        database = Database([fact("Owns", "a", 0.5)])
        analysis = analyze_program(program, database)
        assert not analysis.shardable

    def test_disconnected_body_is_unshardable(self):
        rule = Rule(
            label="r1",
            body=(
                Atom.of("Edge", Variable("x"), Variable("y")),
                Atom.of("Edge", Variable("u"), Variable("v")),
            ),
            head=Atom.of("Pair", Variable("x"), Variable("u")),
        )
        program = Program(name="p", rules=(rule,), goal="Pair")
        database = Database([fact("Edge", "a", "b"), fact("Edge", "c", "d")])
        analysis = analyze_program(program, database)
        assert not analysis.shardable
        assert any("cross" in r or "connect" in r for r in analysis.reasons)


# ----------------------------------------------------------------------
# Partition shapes
# ----------------------------------------------------------------------

class TestPartition:
    def test_single_component_is_one_shard(self):
        instance = figure8_instance()
        partition = partition_database(instance.database)
        assert partition.count == 1

    def test_union_decomposes_into_components(self):
        program, database = union_of(lambda: control_with_steps(4), 3)
        partition = partition_database(database)
        assert partition.count == 3
        total = sum(len(shard) for shard in partition.shards)
        replicated = len(partition.replicated)
        assert total == len(database.facts()) + replicated * (3 - 1)

    def test_shards_preserve_insertion_order(self):
        program, database = union_of(lambda: control_with_steps(3), 2)
        partition = partition_database(database)
        order = {str(f): i for i, f in enumerate(database.facts())}
        for shard in partition.shards:
            positions = [order[str(f)] for f in shard]
            assert positions == sorted(positions)


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------

class TestParity:
    @pytest.mark.parametrize("factory", [
        figure8_instance, figure12_stress_instance,
        figure12_control_instance, figure15_instance,
        close_links_common_control,
    ])
    def test_bundled_scenarios(self, factory):
        instance = factory()
        assert_parity(instance.application.program, instance.database)

    def test_multi_component_control_union(self):
        program, database = union_of(lambda: control_with_steps(4), 5)
        result = assert_parity(program, database)
        assert result.stats.rounds > 0

    def test_multi_component_stress_union(self):
        program, database = union_of(lambda: stress_with_steps(3), 4)
        assert_parity(program, database)

    def test_multi_component_with_process_pool(self):
        program, database = union_of(lambda: control_with_steps(3), 4)
        assert_parity(program, database, processes=2)


# ----------------------------------------------------------------------
# Fallback behaviour
# ----------------------------------------------------------------------

class TestFallback:
    def test_unshardable_program_falls_back_with_counter(self):
        rule = Rule(
            label="r1",
            body=(
                Atom.of("Edge", Variable("x"), Variable("y")),
                Atom.of("Edge", Variable("u"), Variable("v")),
            ),
            head=Atom.of("Pair", Variable("x"), Variable("u")),
        )
        program = Program(name="p", rules=(rule,), goal="Pair")
        database = Database([fact("Edge", "a", "b"), fact("Edge", "c", "d")])
        registry = MetricsRegistry()
        with obs.observed(metrics=registry):
            parallel = ChaseEngine(strategy="parallel").run(
                program, database.copy()
            )
        assert registry.counter_value("engine.parallel_fallback") == 1
        planned = ChaseEngine(strategy="planned").run(
            program, database.copy()
        )
        assert _result_signature(planned) == _result_signature(parallel)

    def test_shardable_run_counts_shards(self):
        program, database = union_of(lambda: control_with_steps(3), 3)
        registry = MetricsRegistry()
        with obs.observed(metrics=registry):
            ChaseEngine(strategy="parallel").run(program, database)
        assert registry.counter_value("engine.parallel_fallback") == 0
        assert registry.counter_value("engine.parallel_runs") == 1
        assert registry.gauge_value("engine.parallel_shards") == 3.0
