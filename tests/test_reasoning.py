"""Unit tests for the reasoning-task API."""

import pytest

from repro.datalog.atoms import Atom, fact
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable
from repro.engine.reasoning import reason


@pytest.fixture()
def control_result():
    program = parse_program(
        """
        sigma1: Own(x, y, s), s > 0.5 -> Control(x, y).
        sigma2: Company(x) -> Control(x, x).
        sigma3: Control(x, z), Own(z, y, s), ts = sum(s), ts > 0.5 -> Control(x, y).
        """,
        name="cc",
        goal="Control",
    )
    facts = [
        fact("Own", "A", "B", 0.6),
        fact("Own", "B", "C", 0.55),
        fact("Company", "A"),
    ]
    return reason(program, facts)


class TestAnswers:
    def test_goal_answers(self, control_result):
        answers = set(control_result.answers())
        assert fact("Control", "A", "B") in answers
        assert fact("Control", "A", "C") in answers
        assert fact("Control", "A", "A") in answers  # auto-control (σ2)

    def test_answers_for_other_predicate(self, control_result):
        assert control_result.answers("Company") == (fact("Company", "A"),)

    def test_answers_requires_goal(self):
        program = parse_program("P(x) -> Q(x).", name="p")
        result = reason(program, [fact("P", "A")])
        with pytest.raises(ValueError):
            result.answers()

    def test_accepts_iterable_of_facts(self):
        program = parse_program("P(x) -> Q(x).", name="p", goal="Q")
        result = reason(program, [fact("P", "A")])
        assert result.answers() == (fact("Q", "A"),)


class TestQuery:
    def test_pattern_query(self, control_result):
        from repro.datalog.terms import Constant

        # Control(x, "C"): B directly (0.55 > 0.5) and A through B.
        matches = control_result.query(
            Atom("Control", (Variable("x"), Constant("C")))
        )
        assert set(matches) == {
            fact("Control", "B", "C"), fact("Control", "A", "C"),
        }

    def test_derived_listing(self, control_result):
        derived = control_result.derived()
        assert fact("Control", "A", "C") in derived

    def test_spine_accessor(self, control_result):
        spine = control_result.spine(fact("Control", "A", "C"))
        assert spine.rule_sequence == ("sigma1", "sigma3")

    def test_proof_size_accessor(self, control_result):
        assert control_result.proof_size(fact("Control", "A", "C")) == 2

    def test_describe_counts(self, control_result):
        assert "derived facts" in control_result.describe()


class TestCachedViews:
    def test_graph_is_cached(self, control_result):
        assert control_result.graph is control_result.graph

    def test_provenance_is_cached(self, control_result):
        assert control_result.provenance is control_result.provenance
