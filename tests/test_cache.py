"""The shared LRU's concurrency contract and region accounting.

Regression focus: the historical ``get_or_create`` ran the factory
outside the lock with no coordination, so two threads missing on the
same key both computed (first store won).  The per-key in-flight latch
must make the factory run at most once per concurrent miss, propagate
factory errors to the owner only, and let waiters retry after a failure.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.cache import CacheRegion, LRUCache


class TestInFlightLatch:
    def test_concurrent_misses_run_factory_once(self):
        cache = LRUCache(capacity=8)
        calls = []
        entered = threading.Barrier(parties=5)
        release = threading.Event()

        def factory():
            calls.append(threading.get_ident())
            release.wait(timeout=5)
            return "value"

        results = []

        def worker():
            entered.wait(timeout=5)
            results.append(cache.get_or_create("key", factory))

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        # All five threads are past the barrier; the owner is inside the
        # factory (holding the latch), the rest must be parked on it.
        # Releasing once must serve all five from a single computation.
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert results == ["value"] * 5
        assert len(calls) == 1, "racing threads duplicated the factory"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 4

    def test_failed_factory_releases_waiters_to_retry(self):
        cache = LRUCache(capacity=8)
        attempts = []
        entered = threading.Barrier(parties=2)
        fail_first = threading.Event()

        def factory():
            attempts.append(1)
            if len(attempts) == 1:
                entered.wait(timeout=5)  # let the second thread park
                fail_first.wait(timeout=5)
                raise RuntimeError("boom")
            return "recovered"

        outcomes = []

        def owner():
            try:
                cache.get_or_create("key", factory)
            except RuntimeError as error:
                outcomes.append(f"raised:{error}")

        def waiter():
            entered.wait(timeout=5)
            outcomes.append(cache.get_or_create("key", factory))

        first = threading.Thread(target=owner)
        second = threading.Thread(target=waiter)
        first.start()
        second.start()
        fail_first.set()
        first.join(timeout=5)
        second.join(timeout=5)
        # The owner saw the error; the waiter retried, became the new
        # owner and computed the value instead of hanging or re-raising.
        assert sorted(outcomes) == ["raised:boom", "recovered"]
        assert len(attempts) == 2
        assert cache.get("key") == "recovered"

    def test_error_is_not_cached(self):
        cache = LRUCache(capacity=4)
        with pytest.raises(ValueError):
            cache.get_or_create("key", lambda: (_ for _ in ()).throw(
                ValueError("nope")
            ))
        assert "key" not in cache
        assert cache.get_or_create("key", lambda: 7) == 7

    def test_zero_capacity_still_serializes_concurrent_misses(self):
        # capacity 0 stores nothing, but the latch must still coalesce
        # a concurrent miss (and tear down cleanly so later calls rerun).
        cache = LRUCache(capacity=0)
        assert cache.get_or_create("key", lambda: "a") == "a"
        assert cache.get_or_create("key", lambda: "b") == "b"
        assert not cache._pending


class TestCacheRegions:
    def test_regions_namespace_keys(self):
        cache = LRUCache(capacity=8)
        first = cache.region("alpha")
        second = cache.region("beta")
        first.put("key", 1)
        second.put("key", 2)
        assert first.get("key") == 1
        assert second.get("key") == 2
        assert cache.region("alpha") is first

    def test_region_stats_are_separate(self):
        cache = LRUCache(capacity=8)
        region = cache.region("alpha")
        other = cache.region("beta")
        assert region.get_or_create("key", lambda: "v") == "v"
        assert region.get_or_create("key", lambda: "w") == "v"
        assert region.stats.misses == 1
        assert region.stats.hits == 1
        assert other.stats.lookups == 0

    def test_snapshot_carries_region_breakdown(self):
        cache = LRUCache(capacity=8)
        cache.region("alpha").get_or_create("key", lambda: "v")
        snapshot = cache.snapshot()
        assert snapshot["regions"]["alpha"]["misses"] == 1
        plain = LRUCache(capacity=8).snapshot()
        assert "regions" not in plain

    def test_regions_share_the_global_bound(self):
        cache = LRUCache(capacity=2)
        region = cache.region("alpha")
        region.put("a", 1)
        region.put("b", 2)
        region.put("c", 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert region.get("a") is None  # least recently used, evicted

    def test_direct_construction_is_a_plain_view(self):
        cache = LRUCache(capacity=4)
        view = CacheRegion(cache, "loose")
        view.put("key", "v")
        assert view.get("key") == "v"
        assert "regions" not in cache.snapshot()  # not registered

    def test_region_counts_miss_when_factory_raises(self):
        cache = LRUCache(capacity=4)
        region = cache.region("alpha")
        with pytest.raises(ValueError):
            region.get_or_create("key", lambda: (_ for _ in ()).throw(
                ValueError("nope")
            ))
        # The lookup happened and missed; an uncounted failure would
        # overstate the region's hit rate under load.
        assert region.stats.misses == 1
        assert region.stats.hits == 0
        assert region.get_or_create("key", lambda: 7) == 7
        assert region.stats.misses == 2


class TestAsyncioPath:
    """The cache and its regions under asyncio: coroutines interleaving
    on one loop thread, plus event-loop code sharing the cache with
    executor threads — the mixed workload the HTTP server runs."""

    def test_interleaved_tasks_coalesce_one_miss(self):
        cache = LRUCache(capacity=8)
        calls: list[str] = []

        async def lookup(name: str):
            loop = asyncio.get_running_loop()

            def factory():
                calls.append(name)
                return "value"

            # get_or_create blocks on the latch, so coroutines must go
            # through the executor — the server's own calling pattern.
            return await loop.run_in_executor(
                None, cache.get_or_create, "key", factory
            )

        async def main():
            return await asyncio.gather(
                *(lookup(f"t{n}") for n in range(6))
            )

        results = asyncio.run(main())
        assert results == ["value"] * 6
        assert len(calls) == 1, "interleaved tasks duplicated the factory"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 5

    def test_region_stats_consistent_under_task_interleaving(self):
        cache = LRUCache(capacity=64)
        region = cache.region("alpha")

        async def lookup(key: str):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, region.get_or_create, key, lambda: key.upper()
            )

        async def main():
            # 4 distinct keys, 5 lookups each, all interleaved.
            return await asyncio.gather(
                *(lookup(f"k{n % 4}") for n in range(20))
            )

        results = asyncio.run(main())
        assert sorted(set(results)) == ["K0", "K1", "K2", "K3"]
        assert region.stats.misses == 4
        assert region.stats.hits == 16
        assert region.stats.lookups == 20

    def test_loop_thread_and_executor_threads_share_regions_safely(self):
        cache = LRUCache(capacity=64)
        region = cache.region("mixed")

        async def main():
            loop = asyncio.get_running_loop()
            jobs = []
            for n in range(10):
                key = f"k{n % 5}"
                if n % 2:
                    # Direct call from the loop thread (factories here
                    # are instant, so blocking the loop is fine).
                    region.get_or_create(key, lambda k=key: k)
                else:
                    jobs.append(
                        loop.run_in_executor(
                            None, region.get_or_create, key,
                            lambda k=key: k,
                        )
                    )
            await asyncio.gather(*jobs)

        asyncio.run(main())
        assert region.stats.misses == 5
        assert region.stats.hits == 5
        snapshot = cache.snapshot()
        assert snapshot["regions"]["mixed"]["misses"] == 5
