"""Tests for the synthetic workload generators."""

import pytest

from repro.apps import generators
from repro.datalog.atoms import fact


class TestControlChain:
    @pytest.mark.parametrize("length", [1, 2, 5, 12, 21])
    def test_exact_proof_length(self, length):
        scenario = generators.control_chain(length, seed=7)
        result = scenario.run()
        assert result.proof_size(scenario.target) == length
        assert scenario.expected_steps == length

    def test_target_is_derived(self):
        scenario = generators.control_chain(4, seed=1)
        result = scenario.run()
        assert scenario.target in result.answers()

    def test_seed_changes_entities(self):
        first = generators.control_chain(3, seed=1)
        second = generators.control_chain(3, seed=2)
        assert first.database.facts() != second.database.facts()

    def test_deterministic_per_seed(self):
        first = generators.control_chain(3, seed=9)
        second = generators.control_chain(3, seed=9)
        assert first.database.facts() == second.database.facts()

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            generators.control_chain(0)


class TestControlAggregation:
    @pytest.mark.parametrize("branches", [2, 3, 5])
    def test_joint_control_derived(self, branches):
        scenario = generators.control_aggregation(branches, seed=2)
        result = scenario.run()
        assert scenario.target in result.answers()
        assert result.proof_size(scenario.target) == branches + 1

    def test_final_step_is_multi_contributor(self):
        scenario = generators.control_aggregation(3, seed=2)
        result = scenario.run()
        record = result.chase_result.record_for(scenario.target)
        assert record.multi_contributor
        assert len(record.contributors) == 3

    def test_stakes_are_distinct(self):
        scenario = generators.control_aggregation(3, seed=2)
        stakes = [
            f.terms[2].value for f in scenario.database
            if f.predicate == "Own" and f.terms[1].value.startswith(
                scenario.target.terms[1].value[:1]
            )
        ]
        # all Own stakes in the scenario are pairwise distinct
        all_stakes = [
            f.terms[2].value for f in scenario.database if f.predicate == "Own"
        ]
        assert len(set(all_stakes)) == len(all_stakes)

    def test_minimum_branches(self):
        with pytest.raises(ValueError):
            generators.control_aggregation(1)


class TestChainWithAggregation:
    def test_combined_structure(self):
        scenario = generators.control_chain_with_aggregation(2, 2, seed=3)
        result = scenario.run()
        assert scenario.target in result.answers()
        assert result.proof_size(scenario.target) == scenario.expected_steps


class TestStressCascade:
    @pytest.mark.parametrize("hops", [0, 1, 3, 6])
    def test_cascade_length(self, hops):
        scenario = generators.stress_cascade(hops, seed=5)
        result = scenario.run()
        assert scenario.target in result.answers()
        assert result.proof_size(scenario.target) == 1 + 2 * hops

    def test_dual_final_adds_one_step(self):
        scenario = generators.stress_cascade(2, seed=5, dual_final=True)
        result = scenario.run()
        assert result.proof_size(scenario.target) == 2 + 2 * 2

    def test_dual_final_needs_a_hop(self):
        with pytest.raises(ValueError):
            generators.stress_cascade(0, dual_final=True)

    def test_all_chain_members_default(self):
        scenario = generators.stress_cascade(3, seed=8)
        result = scenario.run()
        assert len(result.answers()) == 4


class TestStepTargetedBuilders:
    @pytest.mark.parametrize("steps", [1, 3, 4, 5, 8, 9, 13, 22])
    def test_stress_with_steps_exact(self, steps):
        scenario = generators.stress_with_steps(steps, seed=steps)
        result = scenario.run()
        assert result.proof_size(scenario.target) == steps

    def test_stress_steps_two_impossible(self):
        with pytest.raises(ValueError):
            generators.stress_with_steps(2)

    def test_stress_steps_zero_rejected(self):
        with pytest.raises(ValueError):
            generators.stress_with_steps(0)

    @pytest.mark.parametrize("steps", [1, 6, 15, 21])
    def test_control_with_steps_exact(self, steps):
        scenario = generators.control_with_steps(steps, seed=steps)
        result = scenario.run()
        assert result.proof_size(scenario.target) == steps


class TestRandomNetworks:
    def test_ownership_database_shape(self):
        database = generators.random_ownership_database(10, 20, seed=4)
        assert database.count("Own") == 20
        assert database.count("Company") == 10

    def test_ownership_without_companies(self):
        database = generators.random_ownership_database(
            10, 15, seed=4, include_companies=False
        )
        assert database.count("Company") == 0

    def test_debt_database_shape(self):
        database = generators.random_debt_database(8, 12, shocked=2, seed=4)
        assert database.count("HasCapital") == 8
        assert database.count("Shock") == 2
        channels = database.count("LongTermDebts") + database.count(
            "ShortTermDebts"
        )
        assert channels == 12

    def test_random_network_chases_without_error(self):
        from repro.apps import stress_test

        database = generators.random_debt_database(8, 14, shocked=2, seed=6)
        result = stress_test.build().reason(database)
        assert result.chase_result.rounds >= 1


class TestCloseLinksScenario:
    def test_common_control_close_link(self):
        scenario = generators.close_links_common_control(seed=1)
        result = scenario.run()
        assert scenario.target in result.answers()
        assert result.proof_size(scenario.target) == 3


class TestMultiChannelPrograms:
    @pytest.mark.parametrize("channels", [1, 2, 3])
    def test_path_counts_follow_subset_formula(self, channels):
        from repro.core import StructuralAnalysis

        program = generators.multi_channel_stress_program(channels)
        analysis = StructuralAnalysis(program)
        assert len(analysis.simple_paths) == 2 ** channels
        assert len(analysis.cycles) == 2 ** channels - 1

    def test_channel_programs_reason_correctly(self):
        from repro.datalog import fact
        from repro.engine import reason

        program = generators.multi_channel_stress_program(3)
        result = reason(program, [
            fact("Shock", "A", 9), fact("HasCapital", "A", 5),
            fact("HasCapital", "B", 5),
            fact("Debts1", "A", "B", 2),
            fact("Debts2", "A", "B", 2),
            fact("Debts3", "A", "B", 2),
        ])
        assert fact("Default", "B") in result.answers()

    def test_minimum_channels(self):
        with pytest.raises(ValueError):
            generators.multi_channel_stress_program(0)
