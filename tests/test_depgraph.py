"""Unit tests for the dependency graph D(Σ) — paper Figures 3 and 9."""

import pytest

from repro.datalog.depgraph import DependencyGraph
from repro.datalog.parser import parse_program


@pytest.fixture()
def simple_stress():
    """Example 4.3's program, whose D(Σ) is the paper's Figure 3."""
    return parse_program(
        """
        alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
        beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
        gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
        """,
        name="stress_simple",
        goal="Default",
    )


@pytest.fixture()
def graph(simple_stress):
    return DependencyGraph(simple_stress)


class TestFigure3Topology:
    def test_nodes_are_all_predicates(self, graph):
        assert graph.nodes == frozenset(
            {"Shock", "HasCapital", "Default", "Debts", "Risk"}
        )

    def test_edge_set_matches_figure3(self, graph):
        edges = {(e.source, e.target, e.rule_label) for e in graph.edges}
        assert edges == {
            ("Shock", "Default", "alpha"),
            ("HasCapital", "Default", "alpha"),
            ("Default", "Risk", "beta"),
            ("Debts", "Risk", "beta"),
            ("HasCapital", "Default", "gamma"),
            ("Risk", "Default", "gamma"),
        }

    def test_roots_are_shock_hascapital_debts(self, graph):
        assert graph.roots() == frozenset({"Shock", "HasCapital", "Debts"})

    def test_leaf_is_goal(self, graph):
        assert graph.leaf() == "Default"

    def test_cyclic_because_of_recursion(self, graph):
        assert graph.is_recursive()

    def test_default_risk_cycle_found(self, graph):
        cycles = graph.cycles()
        assert any(set(cycle) == {"Default", "Risk"} for cycle in cycles)


class TestDegreesAndRules:
    def test_out_degree(self, graph):
        assert graph.out_degree("Default") == 1
        assert graph.out_degree("HasCapital") == 2
        assert graph.out_degree("Risk") == 1

    def test_in_degree(self, graph):
        # alpha contributes Shock->Default and HasCapital->Default;
        # gamma contributes HasCapital->Default and Risk->Default.
        assert graph.in_degree("Default") == 4

    def test_deriving_rules(self, graph):
        assert graph.deriving_rules("Default") == ("alpha", "gamma")
        assert graph.deriving_rules("Risk") == ("beta",)

    def test_depends_on_transitively(self, graph):
        assert graph.depends_on("Default", "Shock")
        assert graph.depends_on("Risk", "Debts")
        assert not graph.depends_on("Shock", "Default")


class TestAcyclicProgram:
    def test_non_recursive_program(self):
        program = parse_program(
            "P(x) -> Q(x). Q(x) -> R(x).", name="line", goal="R"
        )
        graph = DependencyGraph(program)
        assert not graph.is_recursive()
        assert graph.cycles() == []

    def test_leaf_requires_goal(self):
        program = parse_program("P(x) -> Q(x).", name="nogoal")
        with pytest.raises(ValueError):
            DependencyGraph(program).leaf()

    def test_describe(self, graph):
        text = graph.describe()
        assert "recursive: True" in text
        assert "leaf: Default" in text
