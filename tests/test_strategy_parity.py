"""Three-way strategy parity: naive, semi-naive and planned evaluation
must be observationally identical on every bundled application.

The planned strategy additionally promises *byte-identical* provenance
(DESIGN.md §9): not just the same derived facts, but the same
:class:`ChaseStepRecord` sequence — indexes, rounds, parents, bindings
and labelled nulls all render equal against naive evaluation.
"""

import pytest

from repro.apps import (
    close_links,
    company_control,
    figures,
    generators,
    golden_powers,
    integrated_ownership,
    stress_test,
)
from repro.core import Explainer
from repro.datalog import fact, parse_program
from repro.engine import (
    ChaseEngine,
    ChaseGraph,
    Database,
    SymbolTable,
    chase,
    reason,
)

STRATEGIES = ("naive", "semi-naive", "planned")

WORKLOADS = {
    "figure8": lambda: figures.figure8_instance(),
    "figure12_stress": lambda: figures.figure12_stress_instance(),
    "figure12_control": lambda: figures.figure12_control_instance(),
    "figure15": lambda: figures.figure15_instance(),
    "control_chain": lambda: generators.control_chain(8, seed=3),
    "control_aggregation": lambda: generators.control_chain_with_aggregation(
        6, seed=5
    ),
    "stress_cascade": lambda: generators.stress_cascade(
        4, seed=3, dual_final=True
    ),
    "close_links": lambda: generators.close_links_common_control(seed=3),
}


def _scenario(name):
    return WORKLOADS[name]()


def _facts_by_predicate(result):
    grouped = {}
    for current in result.database.facts():
        grouped.setdefault(current.predicate, set()).add(current)
    return grouped


def _record_fingerprint(result):
    """Everything a provenance record renders: byte-level comparison."""
    return [
        (
            record.index,
            record.round,
            record.rule.label,
            repr(record.fact),
            tuple(repr(parent) for parent in record.parents),
            repr(record.binding),
            repr(record.aggregate_value),
        )
        for record in result.records
    ]


class TestPlannedStrategySelection:
    def test_planned_accepted(self):
        assert ChaseEngine(strategy="planned").strategy == "planned"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ChaseEngine(strategy="compiled")


class TestScenarioParity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_facts_and_records_identical(self, name):
        scenario = _scenario(name)
        program = scenario.application.program
        results = {
            strategy: chase(program, scenario.database, strategy=strategy)
            for strategy in STRATEGIES
        }
        naive = results["naive"]
        for strategy in ("semi-naive", "planned"):
            other = results[strategy]
            assert _facts_by_predicate(naive) == _facts_by_predicate(other)
            assert naive.superseded == other.superseded
            assert len(naive.violations) == len(other.violations)
        # Byte-identical provenance is promised for planned only.
        assert _record_fingerprint(naive) == _record_fingerprint(
            results["planned"]
        )
        assert naive.rounds == results["planned"].rounds

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_chase_graph_edges_identical(self, name):
        scenario = _scenario(name)
        program = scenario.application.program
        graphs = {
            strategy: ChaseGraph(
                chase(program, scenario.database, strategy=strategy)
            )
            for strategy in STRATEGIES
        }
        naive_edges = {
            (edge.source, edge.target, edge.rule_label)
            for edge in graphs["naive"].edges
        }
        for strategy in ("semi-naive", "planned"):
            edges = {
                (edge.source, edge.target, edge.rule_label)
                for edge in graphs[strategy].edges
            }
            assert edges == naive_edges, f"{strategy} chase graph diverged"

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_explanation_texts_identical(self, name):
        scenario = _scenario(name)
        texts = []
        for strategy in STRATEGIES:
            result = reason(
                scenario.application.program, scenario.database,
                strategy=strategy,
            )
            explainer = Explainer(result, scenario.application.glossary)
            texts.append(
                explainer.explain(scenario.target, prefer_enhanced=False).text
            )
        assert texts[0] == texts[1] == texts[2]


class TestApplicationParity:
    """The bundled apps beyond the scenario generators: golden powers,
    integrated ownership, and the direct build() entry points."""

    CASES = {
        "golden_powers": (
            golden_powers.build,
            lambda: [
                golden_powers.own("F", "S", 0.9),
                golden_powers.own("G", "S2", 0.8),
                golden_powers.foreign("F"), golden_powers.foreign("G"),
                golden_powers.strategic("S"), golden_powers.strategic("S2"),
                golden_powers.vetoed("F"), golden_powers.exempt("G"),
            ],
        ),
        "integrated_ownership": (
            integrated_ownership.build,
            lambda: [
                integrated_ownership.own("A", "B", 0.5),
                integrated_ownership.own("B", "C", 0.4),
                integrated_ownership.own("A", "C", 0.1),
                integrated_ownership.own("C", "D", 0.6),
            ],
        ),
        "company_control": (
            company_control.build,
            lambda: list(generators.control_chain(6, seed=9).database.facts()),
        ),
        "close_links": (
            close_links.build,
            lambda: list(
                generators.close_links_common_control(seed=5).database.facts()
            ),
        ),
        "stress_test": (
            stress_test.build_simple,
            lambda: list(
                generators.stress_cascade(3, seed=7).database.facts()
            ),
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_app_reason_parity(self, name):
        builder, load = self.CASES[name]
        application = builder()
        results = {
            strategy: application.reason(load(), strategy=strategy)
            for strategy in STRATEGIES
        }
        naive = results["naive"].chase_result
        for strategy in ("semi-naive", "planned"):
            other = results[strategy].chase_result
            assert _facts_by_predicate(naive) == _facts_by_predicate(other)
        assert _record_fingerprint(naive) == _record_fingerprint(
            results["planned"].chase_result
        )


class TestSymbolTableParity:
    """Interned id assignments depend on what was seen first; rendered
    output must not.  Two databases holding the same facts under
    different id assignments explain byte-identically on every strategy."""

    def _explanations(self, scenario, database):
        texts = []
        for strategy in STRATEGIES:
            result = reason(
                scenario.application.program, database, strategy=strategy
            )
            explainer = Explainer(result, scenario.application.glossary)
            texts.append(
                explainer.explain(scenario.target, prefer_enhanced=False).text
            )
        return texts

    @staticmethod
    def _ids_differ(left, right):
        return any(
            left.symbols.lookup(term) != right.symbols.lookup(term)
            for current in left.facts()
            for term in current.terms
        )

    def test_reversed_insertion_order_same_explanations(self):
        """Same program loaded twice with opposite fact insertion orders:
        the symbol tables assign different ids, the explanations agree
        byte for byte (left-linear chain, so derivations are unique)."""
        scenario = _scenario("control_chain")
        facts = list(scenario.database.facts())
        forward = Database(facts)
        backward = Database(list(reversed(facts)))
        assert self._ids_differ(forward, backward)
        texts = self._explanations(scenario, forward) + self._explanations(
            scenario, backward
        )
        assert len(set(texts)) == 1

    def test_scrambled_symbol_table_same_explanations(self):
        """Id assignment isolated from derivation order: identical fact
        insertion, but one table pre-interned in reverse so every id
        differs.  Figure 8's aggregation-heavy program must not notice."""
        scenario = _scenario("figure8")
        facts = list(scenario.database.facts())
        table = SymbolTable()
        for current in reversed(facts):
            for term in reversed(current.terms):
                table.intern(term)
        plain = Database(facts)
        scrambled = Database(facts, symbols=table)
        assert self._ids_differ(plain, scrambled)
        texts = self._explanations(scenario, plain) + self._explanations(
            scenario, scrambled
        )
        assert len(set(texts)) == 1


class TestPlannedCornerCases:
    def test_transitive_closure_records_byte_identical(self):
        program = parse_program(
            "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
            name="tc", goal="T",
        )
        database = Database([
            fact("E", "A", "B"), fact("E", "B", "C"),
            fact("E", "C", "D"), fact("E", "D", "B"),
        ])
        naive = chase(program, database)
        planned = chase(program, database, strategy="planned")
        assert _record_fingerprint(naive) == _record_fingerprint(planned)

    def test_negation_program_parity(self):
        program = parse_program(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            sep:  Node(x), Node(y), x != y, not T(x, y) -> Unreachable(x, y).
            """,
            name="p", goal="Unreachable",
        )
        database = Database([
            fact("Node", "A"), fact("Node", "B"), fact("Node", "C"),
            fact("E", "A", "B"),
        ])
        naive = chase(program, database)
        planned = chase(program, database, strategy="planned")
        assert _record_fingerprint(naive) == _record_fingerprint(planned)

    def test_existential_nulls_identical(self):
        program = parse_program(
            "r: Person(x) -> HasParent(x, z).",
            name="nulls", goal="HasParent",
        )
        database = Database([fact("Person", "A"), fact("Person", "B")])
        naive = chase(program, database)
        planned = chase(program, database, strategy="planned")
        assert _record_fingerprint(naive) == _record_fingerprint(planned)

    def test_constraint_violations_identical(self):
        program = parse_program(
            """
            r1: Own(x, y, s), s > 0.5 -> Control(x, y).
            c1: Control(x, y), Control(y, x), x != y -> false.
            """,
            name="mutual", goal="Control",
        )
        database = Database([
            fact("Own", "A", "B", 0.7), fact("Own", "B", "A", 0.6),
        ])
        naive = chase(program, database)
        planned = chase(program, database, strategy="planned")
        assert len(naive.violations) == len(planned.violations)
        assert [v.binding for v in naive.violations] == [
            v.binding for v in planned.violations
        ]

    def test_planner_stats_populated(self):
        program = parse_program(
            "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
            name="tc", goal="T",
        )
        database = Database([fact("E", "A", "B"), fact("E", "B", "C")])
        planned = chase(program, database, strategy="planned")
        stats = planned.stats.snapshot()
        assert stats["plans_compiled"] >= 2
        assert set(stats["plans"]) == {"base", "rec"}
        rec = stats["plans"]["rec"]
        assert rec["steps"] == 2
        assert rec["matches"] >= 1
        assert "plan" in rec
