"""Tests for the JSON audit record of explanations."""

import json

from repro.datalog.atoms import fact


class TestAuditRecord:
    def test_serializable(self, figure8_explainer):
        explanation = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        )
        payload = explanation.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_chase_path_recorded(self, figure8_explainer):
        payload = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).to_dict()
        assert payload["chase_path"] == [
            "alpha", "beta", "gamma", "beta", "gamma",
        ]

    def test_segment_composition_recorded(self, figure8_explainer):
        payload = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).to_dict()
        assert [segment["path"] for segment in payload["segments"]] == [
            "Pi2", "Gamma1",
        ]
        cycle = payload["segments"][1]
        assert cycle["multi_rules"] == ["beta"]
        assert cycle["steps"] == [4, 5]

    def test_token_substitutions_recorded(self, figure8_explainer):
        payload = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).to_dict()
        all_values = [
            tuple(values)
            for token_map in payload["tokens"]
            for values in token_map.values()
        ]
        assert ("2", "9") in all_values

    def test_side_explanations_nested(self):
        """An independent shock joining a cascade mid-way is not covered
        by the main spine's cycle (its α is outside {β, γ}): the explainer
        recursively prepends its story, and the audit record nests it."""
        from repro.apps import stress_test
        from repro.core import Explainer
        from repro.engine import reason

        application = stress_test.build_simple()
        facts = [
            # Main cascade: A -> B -> C.
            fact("Shock", "A", 9), fact("HasCapital", "A", 5),
            fact("Debts", "A", "B", 7), fact("HasCapital", "B", 2),
            fact("Debts", "B", "C", 4), fact("HasCapital", "C", 6),
            # Independent shock on D, also a debtor of C.
            fact("Shock", "D", 9), fact("HasCapital", "D", 3),
            fact("Debts", "D", "C", 5),
        ]
        result = reason(application.program, facts)
        explainer = Explainer(result, application.glossary)
        explanation = explainer.explain(fact("Default", "C"), prefer_enhanced=False)
        payload = explanation.to_dict()
        assert payload["side_explanations"]
        side = payload["side_explanations"][0]
        assert side["query"].startswith("Default(")
        # Full completeness including the side shock's constants.
        from repro.core import completeness_ratio

        assert completeness_ratio(
            explanation.text, explainer.proof_constants(fact("Default", "C"))
        ) == 1.0

    def test_text_matches_object(self, figure8_explainer):
        explanation = figure8_explainer.explain(fact("Default", "C"))
        assert explanation.to_dict()["text"] == explanation.text
