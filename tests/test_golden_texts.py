"""Golden-text regression tests.

The deterministic pipeline (verbalizer → templates → mapping →
instantiation) is pure: these snapshots lock the exact texts for the
paper's worked examples so that refactorings cannot silently change the
narrative structure, clause order or number rendering.  (Enhanced texts
are seeded-LLM outputs and intentionally not pinned here.)
"""

from repro.core import Explainer
from repro.datalog import fact

EXAMPLE_4_8_TEMPLATE_TEXT = (
    "Since a shock amounting to 6 million euros affects A, and A is a "
    "financial institution with capital of 5 million euros, and 6 is "
    "higher than 5, then A is in default. Since A is in default, and A "
    "has an amount of 7 million euros of debts with B, then B is at risk "
    "of defaulting given its loan of 7 million euros of exposures to a "
    "defaulted debtor. Since B is a financial institution with capital of "
    "2 million euros, and B is at risk of defaulting given its loan of 7 "
    "million euros of exposures to a defaulted debtor, and 2 is lower "
    "than 7, then B is in default. Since B is in default, and B has an "
    "amount of 2 and 9 million euros of debts with C, with 11 given by "
    "the sum of 2 and 9, then C is at risk of defaulting given its loan "
    "of 11 million euros of exposures to a defaulted debtor. Since C is a "
    "financial institution with capital of 10 million euros, and C is at "
    "risk of defaulting given its loan of 11 million euros of exposures "
    "to a defaulted debtor, and 10 is lower than 11, then C is in default."
)

EXAMPLE_4_8_DETERMINISTIC_TEXT = (
    "Since a shock amounting to 6 million euros affects A, and A is a "
    "financial institution with capital of 5 million euros, and 6 is "
    "higher than 5, then A is in default. Since A is in default, and A "
    "has an amount of 7 million euros of debts with B, then B is at risk "
    "of defaulting given its loan of 7 million euros of exposures to a "
    "defaulted debtor. Since B is a financial institution with capital of "
    "2 million euros, and B is at risk of defaulting given its loan of 7 "
    "million euros of exposures to a defaulted debtor, and 2 is lower "
    "than 7, then B is in default. Since B is in default, and B has an "
    "amount of 2 million euros of debts with C, and B has an amount of 9 "
    "million euros of debts with C, and 11 is given by the sum of 2 and "
    "9, then C is at risk of defaulting given its loan of 11 million "
    "euros of exposures to a defaulted debtor. Since C is a financial "
    "institution with capital of 10 million euros, and C is at risk of "
    "defaulting given its loan of 11 million euros of exposures to a "
    "defaulted debtor, and 10 is lower than 11, then C is in default."
)

FIGURE_15_TEMPLATE_TEXT = (
    "Since IrishBank owns 0.83 and 0.54 shares of FondoItaliano and "
    "FrenchPLC, and 0.83 and 0.54 is higher than 0.5, then IrishBank "
    "exercises control over FondoItaliano and FrenchPLC. Since IrishBank "
    "exercises control over FondoItaliano and FrenchPLC, and "
    "FondoItaliano and FrenchPLC owns 0.36 and 0.21 shares of "
    "MadridCredit, with 0.57 given by the sum of 0.36 and 0.21, and 0.57 "
    "is higher than 0.5, then IrishBank exercises control over "
    "MadridCredit."
)


class TestExample48Snapshot:
    def test_template_explanation(self, figure8_explainer):
        text = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).text
        assert text == EXAMPLE_4_8_TEMPLATE_TEXT

    def test_deterministic_explanation(self, figure8_explainer):
        text = figure8_explainer.deterministic_explanation(fact("Default", "C"))
        assert text == EXAMPLE_4_8_DETERMINISTIC_TEXT

    def test_template_vs_deterministic_differ_only_in_aggregation_style(
        self, figure8_explainer
    ):
        """The template text compacts the two B→C debts into one clause
        with a textual conjunction; everything else coincides."""
        template = figure8_explainer.explain(
            fact("Default", "C"), prefer_enhanced=False
        ).text
        assert template != EXAMPLE_4_8_DETERMINISTIC_TEXT
        assert "2 and 9 million euros of debts" in template
        assert "2 and 9 million euros of debts" not in \
            EXAMPLE_4_8_DETERMINISTIC_TEXT


class TestFigure15Snapshot:
    def test_template_explanation(self, figure15):
        scenario, result = figure15
        explainer = Explainer(result, scenario.application.glossary)
        text = explainer.explain(scenario.target, prefer_enhanced=False).text
        assert text == FIGURE_15_TEMPLATE_TEXT


class TestStability:
    def test_repeated_runs_identical(self, figure8):
        scenario, __ = figure8
        texts = set()
        for _ in range(3):
            result = scenario.run()
            explainer = Explainer(result, scenario.application.glossary)
            texts.add(
                explainer.explain(scenario.target, prefer_enhanced=False).text
            )
        assert len(texts) == 1
