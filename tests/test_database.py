"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.atoms import Atom, fact
from repro.datalog.errors import ArityError
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database


def v(name):
    return Variable(name)


class TestMutation:
    def test_add_returns_true_for_new_fact(self):
        database = Database()
        assert database.add(fact("P", "A"))

    def test_add_returns_false_for_duplicate(self):
        database = Database([fact("P", "A")])
        assert not database.add(fact("P", "A"))
        assert len(database) == 1

    def test_add_all_counts_new(self):
        database = Database([fact("P", "A")])
        added = database.add_all([fact("P", "A"), fact("P", "B"), fact("P", "C")])
        assert added == 2

    def test_non_ground_rejected(self):
        with pytest.raises(ArityError):
            Database().add(Atom("P", (v("x"),)))

    def test_arity_conflict_rejected(self):
        database = Database([fact("P", "A")])
        with pytest.raises(ArityError):
            database.add(fact("P", "A", "B"))


class TestLookup:
    def test_contains(self):
        database = Database([fact("P", "A")])
        assert fact("P", "A") in database
        assert fact("P", "B") not in database

    def test_facts_by_predicate_in_insertion_order(self):
        database = Database([fact("P", "B"), fact("Q", "X"), fact("P", "A")])
        assert database.facts("P") == (fact("P", "B"), fact("P", "A"))

    def test_all_facts(self):
        database = Database([fact("P", "A"), fact("Q", "B")])
        assert len(database.facts()) == 2

    def test_predicates(self):
        database = Database([fact("P", "A"), fact("Q", "B")])
        assert database.predicates() == frozenset({"P", "Q"})

    def test_count(self):
        database = Database([fact("P", "A"), fact("P", "B")])
        assert database.count("P") == 2
        assert database.count("Missing") == 0


class TestMatching:
    DB = Database([
        fact("Own", "A", "B", 0.6),
        fact("Own", "A", "C", 0.3),
        fact("Own", "B", "C", 0.7),
    ])

    def test_match_unbound_pattern(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        assert len(list(self.DB.match(pattern))) == 3

    def test_match_with_constant(self):
        pattern = Atom("Own", (Constant("A"), v("y"), v("s")))
        matched = [m for m, _ in self.DB.match(pattern)]
        assert matched == [fact("Own", "A", "B", 0.6), fact("Own", "A", "C", 0.3)]

    def test_match_with_binding(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        matched = list(self.DB.match(pattern, {v("y"): Constant("C")}))
        assert len(matched) == 2

    def test_match_excludes(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        excluded = frozenset({fact("Own", "A", "B", 0.6)})
        matched = [m for m, _ in self.DB.match(pattern, exclude=excluded)]
        assert fact("Own", "A", "B", 0.6) not in matched

    def test_candidates_use_most_selective_index(self):
        pattern = Atom("Own", (Constant("B"), v("y"), v("s")))
        candidates = self.DB.candidates(pattern, {})
        assert tuple(candidates) == (fact("Own", "B", "C", 0.7),)

    def test_match_binding_extension(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        __, binding = next(self.DB.match(pattern))
        assert binding[v("x")] == Constant("A")


class TestSequencesAndCompositeIndexes:
    def test_sequence_reflects_insertion_order(self):
        database = Database([fact("P", "B"), fact("Q", "X"), fact("P", "A")])
        assert database.sequence(fact("P", "B")) == 0
        assert database.sequence(fact("Q", "X")) == 1
        assert database.sequence(fact("P", "A")) == 2

    def test_index_on_groups_by_key(self):
        database = Database([
            fact("Own", "A", "B", 0.6),
            fact("Own", "A", "C", 0.3),
            fact("Own", "B", "C", 0.7),
        ])
        buckets = database.index_on("Own", (0,))
        assert [f.terms[1].value for f in buckets[(Constant("A"),)]] == ["B", "C"]
        assert len(buckets[(Constant("B"),)]) == 1

    def test_index_on_maintained_incrementally_by_add(self):
        database = Database([fact("Own", "A", "B", 0.6)])
        buckets = database.index_on("Own", (0,))
        database.add(fact("Own", "A", "C", 0.9))
        assert len(buckets[(Constant("A"),)]) == 2

    def test_facts_cache_invalidated_on_add(self):
        database = Database([fact("P", "A")])
        before = database.facts("P")
        database.add(fact("P", "B"))
        assert before == (fact("P", "A"),)
        assert database.facts("P") == (fact("P", "A"), fact("P", "B"))
        assert len(database.facts()) == 2

    def test_copy_does_not_share_composite_indexes(self):
        original = Database([fact("Own", "A", "B", 0.6)])
        original.index_on("Own", (0,))
        assert original.composite_index_count() == 1
        clone = original.copy()
        assert clone.composite_index_count() == 0
        clone.add(fact("Own", "A", "C", 0.9))
        buckets = clone.index_on("Own", (0,))
        assert len(buckets[(Constant("A"),)]) == 2
        assert len(original.index_on("Own", (0,))[(Constant("A"),)]) == 1


class TestCopy:
    def test_copy_is_independent(self):
        original = Database([fact("P", "A")])
        clone = original.copy()
        clone.add(fact("P", "B"))
        assert len(original) == 1
        assert len(clone) == 2

    def test_copy_indexes_are_independent_both_ways(self):
        """The structural fast path must not share index containers:
        additions on either side stay invisible to the other, in the
        predicate index, the constant-position index and the fact set."""
        original = Database([
            fact("Own", "A", "B", 0.6), fact("Own", "B", "C", 0.7),
        ])
        clone = original.copy()
        clone.add(fact("Own", "A", "C", 0.9))
        original.add(fact("Own", "C", "D", 0.8))

        assert fact("Own", "A", "C", 0.9) not in original
        assert fact("Own", "C", "D", 0.8) not in clone
        assert original.count("Own") == 3
        assert clone.count("Own") == 3
        # Constant-position index: lookups route through candidates().
        pattern = Atom("Own", (Constant("A"), v("y"), v("s")))
        assert fact("Own", "A", "C", 0.9) in clone.candidates(pattern, {})
        assert fact("Own", "A", "C", 0.9) not in original.candidates(pattern, {})

    def test_copy_preserves_order_and_matching(self):
        original = Database([
            fact("Own", "A", "B", 0.6), fact("Own", "B", "C", 0.7),
        ])
        clone = original.copy()
        assert clone.facts() == original.facts()
        assert clone.predicates() == original.predicates()
        matches = [m for m, _ in clone.match(Atom("Own", (v("x"), v("y"), v("s"))))]
        assert matches == list(original.facts("Own"))

    def test_copy_preserves_arity_checks(self):
        clone = Database([fact("P", "A")]).copy()
        with pytest.raises(ArityError):
            clone.add(fact("P", "A", "B"))

    def test_describe_truncation(self):
        database = Database([fact("P", i) for i in range(10)])
        text = database.describe(limit=3)
        assert "more" in text
