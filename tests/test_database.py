"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.atoms import Atom, fact
from repro.datalog.errors import ArityError
from repro.datalog.terms import Constant, Variable
from repro.engine.database import Database


def v(name):
    return Variable(name)


class TestMutation:
    def test_add_returns_true_for_new_fact(self):
        database = Database()
        assert database.add(fact("P", "A"))

    def test_add_returns_false_for_duplicate(self):
        database = Database([fact("P", "A")])
        assert not database.add(fact("P", "A"))
        assert len(database) == 1

    def test_add_all_counts_new(self):
        database = Database([fact("P", "A")])
        added = database.add_all([fact("P", "A"), fact("P", "B"), fact("P", "C")])
        assert added == 2

    def test_non_ground_rejected(self):
        with pytest.raises(ArityError):
            Database().add(Atom("P", (v("x"),)))

    def test_arity_conflict_rejected(self):
        database = Database([fact("P", "A")])
        with pytest.raises(ArityError):
            database.add(fact("P", "A", "B"))


class TestLookup:
    def test_contains(self):
        database = Database([fact("P", "A")])
        assert fact("P", "A") in database
        assert fact("P", "B") not in database

    def test_facts_by_predicate_in_insertion_order(self):
        database = Database([fact("P", "B"), fact("Q", "X"), fact("P", "A")])
        assert database.facts("P") == (fact("P", "B"), fact("P", "A"))

    def test_all_facts(self):
        database = Database([fact("P", "A"), fact("Q", "B")])
        assert len(database.facts()) == 2

    def test_predicates(self):
        database = Database([fact("P", "A"), fact("Q", "B")])
        assert database.predicates() == frozenset({"P", "Q"})

    def test_count(self):
        database = Database([fact("P", "A"), fact("P", "B")])
        assert database.count("P") == 2
        assert database.count("Missing") == 0


class TestMatching:
    DB = Database([
        fact("Own", "A", "B", 0.6),
        fact("Own", "A", "C", 0.3),
        fact("Own", "B", "C", 0.7),
    ])

    def test_match_unbound_pattern(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        assert len(list(self.DB.match(pattern))) == 3

    def test_match_with_constant(self):
        pattern = Atom("Own", (Constant("A"), v("y"), v("s")))
        matched = [m for m, _ in self.DB.match(pattern)]
        assert matched == [fact("Own", "A", "B", 0.6), fact("Own", "A", "C", 0.3)]

    def test_match_with_binding(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        matched = list(self.DB.match(pattern, {v("y"): Constant("C")}))
        assert len(matched) == 2

    def test_match_excludes(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        excluded = frozenset({fact("Own", "A", "B", 0.6)})
        matched = [m for m, _ in self.DB.match(pattern, exclude=excluded)]
        assert fact("Own", "A", "B", 0.6) not in matched

    def test_candidates_use_most_selective_index(self):
        pattern = Atom("Own", (Constant("B"), v("y"), v("s")))
        candidates = self.DB.candidates(pattern, {})
        assert tuple(candidates) == (fact("Own", "B", "C", 0.7),)

    def test_match_binding_extension(self):
        pattern = Atom("Own", (v("x"), v("y"), v("s")))
        __, binding = next(self.DB.match(pattern))
        assert binding[v("x")] == Constant("A")


class TestSequencesAndCompositeIndexes:
    def test_sequence_reflects_insertion_order(self):
        database = Database([fact("P", "B"), fact("Q", "X"), fact("P", "A")])
        assert database.sequence(fact("P", "B")) == 0
        assert database.sequence(fact("Q", "X")) == 1
        assert database.sequence(fact("P", "A")) == 2

    def test_index_on_groups_by_key(self):
        database = Database([
            fact("Own", "A", "B", 0.6),
            fact("Own", "A", "C", 0.3),
            fact("Own", "B", "C", 0.7),
        ])
        # Buckets are keyed by interned id (bare for one position) and
        # hold row numbers into rows("Own").
        buckets = database.index_on("Own", (0,))
        rows = database.rows("Own")
        key_a = database.symbols.lookup(Constant("A"))
        key_b = database.symbols.lookup(Constant("B"))
        assert [rows[r].terms[1].value for r in buckets[key_a]] == ["B", "C"]
        assert len(buckets[key_b]) == 1

    def test_index_on_composite_key_is_id_tuple(self):
        database = Database([
            fact("Own", "A", "B", 0.6),
            fact("Own", "A", "C", 0.3),
        ])
        buckets = database.index_on("Own", (0, 1))
        lookup = database.symbols.lookup
        key = (lookup(Constant("A")), lookup(Constant("C")))
        assert [database.rows("Own")[r] for r in buckets[key]] == [
            fact("Own", "A", "C", 0.3)
        ]

    def test_index_on_maintained_incrementally_by_add(self):
        database = Database([fact("Own", "A", "B", 0.6)])
        buckets = database.index_on("Own", (0,))
        database.add(fact("Own", "A", "C", 0.9))
        assert len(buckets[database.symbols.lookup(Constant("A"))]) == 2

    def test_facts_cache_invalidated_on_add(self):
        database = Database([fact("P", "A")])
        before = database.facts("P")
        database.add(fact("P", "B"))
        assert before == (fact("P", "A"),)
        assert database.facts("P") == (fact("P", "A"), fact("P", "B"))
        assert len(database.facts()) == 2

    def test_copy_does_not_share_composite_indexes(self):
        original = Database([fact("Own", "A", "B", 0.6)])
        original.index_on("Own", (0,))
        assert original.composite_index_count() == 1
        clone = original.copy()
        assert clone.composite_index_count() == 0
        clone.add(fact("Own", "A", "C", 0.9))
        key = clone.symbols.lookup(Constant("A"))
        assert len(clone.index_on("Own", (0,))[key]) == 2
        assert len(original.index_on("Own", (0,))[key]) == 1


class TestColumnarStore:
    def test_columns_are_row_aligned_interned_ids(self):
        database = Database([
            fact("Own", "A", "B", 0.6),
            fact("Own", "A", "C", 0.3),
        ])
        columns = database.columns("Own")
        assert len(columns) == 3
        term = database.symbols.term
        rows = database.rows("Own")
        for position, column in enumerate(columns):
            assert [term(i) for i in column] == [
                row.terms[position] for row in rows
            ]

    def test_columns_of_missing_predicate_empty(self):
        assert Database().columns("Nope") == ()
        assert len(Database().rows("Nope")) == 0

    def test_columns_view_is_live(self):
        database = Database([fact("P", "A")])
        column = database.columns("P")[0]
        database.add(fact("P", "B"))
        assert len(column) == 2

    def test_location_and_fact_at_invert_sequence(self):
        database = Database([fact("P", "B"), fact("Q", "X"), fact("P", "A")])
        for current in database.facts():
            seq = database.sequence(current)
            assert database.fact_at(seq) == current
            predicate, row = database.location(current)
            assert database.rows(predicate)[row] == current
        assert database.row_sequences("P") == [0, 2]

    def test_copy_shares_symbol_table(self):
        original = Database([fact("P", "A")])
        clone = original.copy()
        assert clone.symbols is original.symbols
        clone.add(fact("P", "B"))
        # New interning is visible to both (append-only table) but the
        # fact itself is not.
        assert Constant("B") in original.symbols
        assert fact("P", "B") not in original

    def test_value_equal_constants_share_an_id(self):
        database = Database([fact("P", 1), fact("Q", 1.0), fact("R", True)])
        lookup = database.symbols.lookup
        assert lookup(Constant(1)) == lookup(Constant(1.0)) == lookup(Constant(True))
        # Facts keep their original spelling regardless.
        assert str(database.facts("Q")[0]) == "Q(1)"


class TestCopy:
    def test_copy_is_independent(self):
        original = Database([fact("P", "A")])
        clone = original.copy()
        clone.add(fact("P", "B"))
        assert len(original) == 1
        assert len(clone) == 2

    def test_copy_indexes_are_independent_both_ways(self):
        """The structural fast path must not share index containers:
        additions on either side stay invisible to the other, in the
        predicate index, the constant-position index and the fact set."""
        original = Database([
            fact("Own", "A", "B", 0.6), fact("Own", "B", "C", 0.7),
        ])
        clone = original.copy()
        clone.add(fact("Own", "A", "C", 0.9))
        original.add(fact("Own", "C", "D", 0.8))

        assert fact("Own", "A", "C", 0.9) not in original
        assert fact("Own", "C", "D", 0.8) not in clone
        assert original.count("Own") == 3
        assert clone.count("Own") == 3
        # Constant-position index: lookups route through candidates().
        pattern = Atom("Own", (Constant("A"), v("y"), v("s")))
        assert fact("Own", "A", "C", 0.9) in clone.candidates(pattern, {})
        assert fact("Own", "A", "C", 0.9) not in original.candidates(pattern, {})

    def test_copy_preserves_order_and_matching(self):
        original = Database([
            fact("Own", "A", "B", 0.6), fact("Own", "B", "C", 0.7),
        ])
        clone = original.copy()
        assert clone.facts() == original.facts()
        assert clone.predicates() == original.predicates()
        matches = [m for m, _ in clone.match(Atom("Own", (v("x"), v("y"), v("s"))))]
        assert matches == list(original.facts("Own"))

    def test_copy_preserves_arity_checks(self):
        clone = Database([fact("P", "A")]).copy()
        with pytest.raises(ArityError):
            clone.add(fact("P", "A", "B"))

    def test_describe_truncation(self):
        database = Database([fact("P", i) for i in range(10)])
        text = database.describe(limit=3)
        assert "more" in text
