"""Tests for chase-to-template mapping — paper Section 4.3, Example 4.7."""

import pytest

from repro.apps import figures, generators
from repro.core.explain import Explainer
from repro.core.mapping import MappingError, TemplateMapper
from repro.core.structural import StructuralAnalysis
from repro.datalog.atoms import fact
from repro.datalog.parser import parse_program
from repro.engine.reasoning import reason


def map_target(scenario):
    result = scenario.run()
    analysis = StructuralAnalysis(scenario.application.program)
    mapper = TemplateMapper(analysis)
    spine = result.spine(scenario.target)
    return mapper.map_spine(spine, result.chase_result.derivation), analysis


class TestExample47:
    """π = {α, β, γ, β, γ} maps to the single-contributor three-rule
    simple path followed by the dashed cycle (templates of Fig. 6)."""

    def test_segmentation(self, figure8):
        scenario, __ = figure8
        segments, __ = map_target(scenario)
        assert len(segments) == 2

    def test_longest_prefix_simple_path_selected(self, figure8):
        scenario, __ = figure8
        segments, __ = map_target(scenario)
        first = segments[0]
        assert frozenset(first.path.labels) == frozenset(
            {"alpha", "beta", "gamma"}
        )
        assert first.coverage == 3
        # single-contributor aggregation: the plain (non-dashed) variant.
        assert first.path.multi_rules == frozenset()

    def test_multi_input_cycle_variant_selected(self, figure8):
        scenario, __ = figure8
        segments, __ = map_target(scenario)
        cycle = segments[1]
        assert cycle.path.is_cycle
        assert frozenset(cycle.path.labels) == frozenset({"beta", "gamma"})
        assert cycle.path.multi_rules == frozenset({"beta"})

    def test_segments_tile_the_spine(self, figure8):
        scenario, __ = figure8
        segments, __ = map_target(scenario)
        assert segments[0].start == 0
        assert segments[0].end == segments[1].start
        assert segments[1].end == 5

    def test_assignments_cover_path_rules(self, figure8):
        scenario, __ = figure8
        segments, __ = map_target(scenario)
        for segment in segments:
            assert set(segment.assignments) == set(segment.path.labels)


class TestJointChannels:
    def test_figure12_composition(self, figure12_stress):
        """Section 5's narrative: {Π7, Γ3, Γ4} — the single-channel prefix,
        a short-channel cycle, and the joint dual-channel cycle."""
        scenario, __ = figure12_stress
        segments, __ = map_target(scenario)
        label_sets = [frozenset(s.path.labels) for s in segments]
        assert label_sets == [
            frozenset({"sigma4", "sigma5", "sigma7"}),
            frozenset({"sigma6", "sigma7"}),
            frozenset({"sigma5", "sigma6", "sigma7"}),
        ]

    def test_joint_cycle_absorbs_side_branch(self, figure12_stress):
        scenario, __ = figure12_stress
        segments, __ = map_target(scenario)
        joint = segments[-1]
        assert set(joint.assignments) == {"sigma5", "sigma6", "sigma7"}
        # The side branch (B's short-term exposure) is assigned the
        # off-spine σ6 record.
        sigma6_records = joint.assignments["sigma6"]
        assert len(sigma6_records) == 1

    def test_joint_control_aggregation(self, figure15):
        """Figure 15: both σ1 applications merge into one σ1 assignment."""
        scenario, __ = figure15
        segments, __ = map_target(scenario)
        assert len(segments) == 1
        only = segments[0]
        assert frozenset(only.path.labels) == frozenset({"sigma1", "sigma3"})
        assert len(only.assignments["sigma1"]) == 2


class TestChains:
    def test_long_chain_tiles_with_cycles(self):
        scenario = generators.control_with_steps(9, seed=1)
        segments, __ = map_target(scenario)
        assert frozenset(segments[0].path.labels) == frozenset(
            {"sigma1", "sigma3"}
        )
        assert all(
            frozenset(s.path.labels) == frozenset({"sigma3"})
            for s in segments[1:]
        )
        assert len(segments) == 1 + 7  # 2 steps + 7 cycle steps

    def test_stress_chain_alternating_channels(self):
        scenario = generators.stress_with_steps(9, seed=2)
        segments, __ = map_target(scenario)
        covered = sum(s.coverage for s in segments)
        spine_length = scenario.run().spine(scenario.target).steps
        assert covered == len(spine_length)


class TestEdbSeededIntensional:
    def test_cycle_used_when_start_fact_is_seeded(self):
        """A Default seeded directly in the EDB has no simple-path story:
        the mapper falls back to a cycle, whose anchor is 'given'."""
        program = parse_program(
            """
            alpha: Shock(f, s), HasCapital(f, p1), s > p1 -> Default(f).
            beta:  Default(d), Debts(d, c, v), e = sum(v) -> Risk(c, e).
            gamma: HasCapital(c, p2), Risk(c, e), p2 < e -> Default(c).
            """,
            name="seeded", goal="Default",
        )
        result = reason(program, [
            fact("Default", "X"),
            fact("Debts", "X", "Y", 9),
            fact("HasCapital", "Y", 3),
        ])
        analysis = StructuralAnalysis(program)
        mapper = TemplateMapper(analysis)
        spine = result.spine(fact("Default", "Y"))
        segments = mapper.map_spine(spine, result.chase_result.derivation)
        assert len(segments) == 1
        assert segments[0].path.is_cycle


class TestErrors:
    def test_unmappable_spine_raises(self):
        """A program whose goal rule is missing from every reasoning path
        cannot occur by construction; simulate by querying with the wrong
        analysis (the control analysis over a stress-test spine)."""
        stress = figures.figure8_instance()
        result = stress.run()
        control_analysis = StructuralAnalysis(
            generators.control_chain(1).application.program
        )
        mapper = TemplateMapper(control_analysis)
        spine = result.spine(fact("Default", "C"))
        with pytest.raises(MappingError):
            mapper.map_spine(spine, result.chase_result.derivation)
