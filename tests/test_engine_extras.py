"""Deeper engine coverage: all aggregate functions end to end, arithmetic
in rules, aggregate argument expressions, mixed workloads."""

import pytest

from repro.datalog import fact, parse_program
from repro.engine import reason


class TestAggregateFunctionsEndToEnd:
    DATA = [
        fact("Sale", "Store1", 10),
        fact("Sale", "Store1", 25),
        fact("Sale", "Store1", 5),
        fact("Sale", "Store2", 7),
    ]

    def run(self, function):
        program = parse_program(
            f"agg: Sale(s, v), r = {function}(v) -> Result(s, r).",
            name=function, goal="Result",
        )
        result = reason(program, self.DATA)
        return {
            str(f.terms[0]): f.terms[1].value for f in result.answers()
        }

    def test_sum(self):
        assert self.run("sum") == {"Store1": 40, "Store2": 7}

    def test_min(self):
        assert self.run("min") == {"Store1": 5, "Store2": 7}

    def test_max(self):
        assert self.run("max") == {"Store1": 25, "Store2": 7}

    def test_count(self):
        assert self.run("count") == {"Store1": 3, "Store2": 1}

    def test_prod(self):
        assert self.run("prod") == {"Store1": 1250, "Store2": 7}


class TestAggregateArgumentExpressions:
    def test_sum_over_arithmetic_expression(self):
        """Aggregate arguments may be arithmetic over body variables:
        total exposure = sum of amount * weight."""
        program = parse_program(
            """
            agg: Exposure(c, v, w), t = sum(v * w) -> Weighted(c, t).
            """,
            name="weighted", goal="Weighted",
        )
        result = reason(program, [
            fact("Exposure", "C", 10, 2),
            fact("Exposure", "C", 5, 4),
        ])
        assert result.answers() == (fact("Weighted", "C", 40),)

    def test_condition_with_arithmetic_both_sides(self):
        program = parse_program(
            "r: Pair(x, a, b), a + b > 2 * a -> BGreater(x).",
            name="arith", goal="BGreater",
        )
        result = reason(program, [
            fact("Pair", "P1", 3, 5), fact("Pair", "P2", 5, 3),
        ])
        assert result.answers() == (fact("BGreater", "P1"),)

    def test_division_in_condition(self):
        program = parse_program(
            "r: Ratio(x, n, d), n / d >= 0.5 -> High(x).",
            name="div", goal="High",
        )
        result = reason(program, [
            fact("Ratio", "A", 3, 4), fact("Ratio", "B", 1, 4),
        ])
        assert result.answers() == (fact("High", "A"),)


class TestMixedWorkloads:
    def test_aggregate_feeding_aggregate(self):
        """Two aggregation levels: per-branch subtotals, then the grand
        total over subtotals (σ5/σ6 → σ7 in miniature)."""
        program = parse_program(
            """
            lvl1: Sale(branch, region, v), s = sum(v) -> Subtotal(region, branch, s).
            lvl2: Subtotal(region, branch, s), t = sum(s) -> Total(region, t).
            """,
            name="rollup", goal="Total",
        )
        result = reason(program, [
            fact("Sale", "B1", "North", 10),
            fact("Sale", "B1", "North", 5),
            fact("Sale", "B2", "North", 20),
            fact("Sale", "B3", "South", 7),
        ])
        totals = {str(f.terms[0]): f.terms[1].value for f in result.answers()}
        assert totals == {"North": 35, "South": 7}

    def test_aggregate_over_recursive_predicate(self):
        """Counting derived facts: reachable-node counts per source."""
        program = parse_program(
            """
            base: E(x, y) -> T(x, y).
            rec:  T(x, y), E(y, z) -> T(x, z).
            cnt:  T(x, y), c = count(y) -> Reach(x, c).
            """,
            name="reach", goal="Reach",
        )
        result = reason(program, [
            fact("E", "A", "B"), fact("E", "B", "C"),
        ])
        reach = {str(f.terms[0]): f.terms[1].value for f in result.answers()}
        assert reach["A"] == 2
        assert reach["B"] == 1

    def test_string_channel_comparison(self):
        program = parse_program(
            '''
            r: Risk(c, e, t), t == "long" -> LongRisk(c, e).
            ''',
            name="chan", goal="LongRisk",
        )
        result = reason(program, [
            fact("Risk", "C", 5, "long"), fact("Risk", "C", 9, "short"),
        ])
        assert result.answers() == (fact("LongRisk", "C", 5),)


class TestRoundsAndOrdering:
    def test_round_numbers_monotone(self):
        scenario_program = parse_program(
            "base: E(x, y) -> T(x, y). rec: T(x, y), E(y, z) -> T(x, z).",
            name="tc", goal="T",
        )
        result = reason(scenario_program, [
            fact("E", "A", "B"), fact("E", "B", "C"), fact("E", "C", "D"),
        ]).chase_result
        rounds = [record.round for record in result.records]
        assert rounds == sorted(rounds)

    def test_deterministic_record_order(self):
        program = parse_program(
            "r1: P(x) -> Q(x). r2: R(x) -> Q(x).", name="p", goal="Q"
        )
        facts = [fact("P", "A"), fact("R", "B")]
        first = reason(program, facts).chase_result
        second = reason(program, facts).chase_result
        assert [r.fact for r in first.records] == [r.fact for r in second.records]


class TestAggregateEdgeCases:
    def test_group_key_includes_all_head_variables(self):
        program = parse_program(
            "agg: Debt(d, c, v), e = sum(v) -> Owed(d, c, e).",
            name="per-pair", goal="Owed",
        )
        result = reason(program, [
            fact("Debt", "A", "C", 2),
            fact("Debt", "A", "C", 3),
            fact("Debt", "B", "C", 10),
        ])
        owed = {
            (str(f.terms[0]), str(f.terms[1])): f.terms[2].value
            for f in result.answers()
        }
        assert owed == {("A", "C"): 5, ("B", "C"): 10}

    def test_aggregate_head_constant_channel(self):
        """σ5-style: a constant in the head tags the aggregate's output."""
        program = parse_program(
            'agg: Debt(d, c, v), e = sum(v) -> Risk(c, e, "long").',
            name="tagged", goal="Risk",
        )
        result = reason(program, [fact("Debt", "A", "C", 7)])
        assert result.answers() == (fact("Risk", "C", 7, "long"),)

    def test_no_contributions_no_output(self):
        program = parse_program(
            "agg: Debt(d, c, v), e = sum(v) -> Risk(c, e).",
            name="empty", goal="Risk",
        )
        result = reason(program, [fact("Unrelated", "X")])
        assert result.answers() == ()
